"""In-memory network transport for the pseudo-distributed cluster.

Two communication styles, matching the paper's two Raft targets:

* **asynchronous** — ``send`` enqueues the message into the receiver's
  inbox; the receiver's loop thread dequeues and handles it (Xraft,
  ZooKeeper style),
* **synchronous RPC** — ``rpc`` invokes the receiver's handler in the
  caller's thread and returns its reply (Raft-java style).

Inboxes are *mailboxes*: they belong to the node identity, not the node
process, so messages that were in flight when a node crashed are still
there when it restarts.  This matches the specification's view of the
network — a message stays in the message bag until a handler action
consumes it — and is what message-retrying transports (gRPC, Xraft's
channel layer) provide in the paper's targets.  A node that aborts
before *starting* to handle a dequeued message puts it back with
:meth:`redeliver`.

Messages to node ids that were never part of the cluster go to
``dead_letters``.

The network is also the injection point for the nemesis layer
(:mod:`repro.faults`): a **symmetric partition** splits the node ids
into groups and *holds* every asynchronous message crossing the cut
(synchronous RPC fails immediately, like a broken TCP connection);
:meth:`heal` releases held messages into their mailboxes in send order,
so a partition delays delivery without losing messages — exactly the
specification's view, where an in-flight message simply stays in the
bag longer.  :meth:`reorder_inbox` permutes one mailbox with a seeded
RNG; the spec's message bag is order-free, so a correct implementation
must tolerate any permutation.

Beyond the symmetric partition the fabric supports three finer
disturbances, all released by the same :meth:`heal`:

* :meth:`cut_link` — an **asymmetric one-way cut**: only ``src -> dst``
  traffic is held; the reverse direction still flows,
* :meth:`delay_link` — hold the **next N** messages on one directed
  link (a deterministic stand-in for a latency spike: the held prefix
  arrives after heal, i.e. strictly later than everything else),
* :meth:`corrupt_inbox` — remove one pending message from a mailbox,
  modeling a corrupted frame the receiver's checksum rejects.  Unlike
  the holds above this *loses* the message, so it is a disruptive
  fault.

Under the deterministic simulation harness the same fault semantics
apply, but delivery itself becomes a virtual-time event on the seeded
scheduler: see :class:`repro.runtime.sim.SimNetwork`, which subclasses
this fabric and reuses :meth:`_route` so partitions, cuts and delays
behave identically on both paths (``docs/RUNTIME.md``).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["Envelope", "Network", "RpcError"]


class RpcError(Exception):
    """A synchronous RPC failed (peer down or handler raised)."""


class Envelope:
    """A message in flight: source, destination and payload."""

    __slots__ = ("src", "dst", "payload")

    def __init__(self, src: str, dst: str, payload: Any):
        self.src = src
        self.dst = dst
        self.payload = payload

    def __repr__(self) -> str:
        return f"Envelope({self.src} -> {self.dst}: {self.payload!r})"


class Network:
    """The cluster's message fabric."""

    def __init__(self):
        self._inboxes: Dict[str, "queue.Queue[Envelope]"] = {}
        self._up: Dict[str, bool] = {}
        self._rpc_handlers: Dict[str, Callable[[str, Any], Any]] = {}
        self._lock = threading.Lock()
        self.sent_count = 0
        self.dead_letters: List[Envelope] = []
        # nemesis state: node_id -> partition group index, held envelopes
        self._partition: Dict[str, int] = {}
        self._held: List[Envelope] = []
        # directed link faults: (src, dst) -> True for a cut, or the
        # number of messages still to hold for a delay
        self._cuts: Dict[tuple, bool] = {}
        self._delays: Dict[tuple, int] = {}
        self.held_count = 0       # lifetime total of envelopes ever held
        self.reorder_count = 0    # lifetime total of reorder operations
        self.corrupt_count = 0    # lifetime total of corrupted (dropped) messages
        self.corrupted: List[Envelope] = []

    # -- registration --------------------------------------------------------
    def register(self, node_id: str,
                 rpc_handler: Optional[Callable[[str, Any], Any]] = None) -> None:
        """Attach ``node_id``; its mailbox (and backlog) is reused if it
        existed before — a restarted node sees retained messages."""
        with self._lock:
            if node_id not in self._inboxes:
                self._inboxes[node_id] = queue.Queue()
            self._up[node_id] = True
            if rpc_handler is not None:
                self._rpc_handlers[node_id] = rpc_handler

    def unregister(self, node_id: str) -> None:
        """Mark ``node_id`` down (crash).  The mailbox is retained."""
        with self._lock:
            self._up[node_id] = False
            self._rpc_handlers.pop(node_id, None)

    def is_registered(self, node_id: str) -> bool:
        with self._lock:
            return self._up.get(node_id, False)

    # -- asynchronous delivery --------------------------------------------------
    def _route(self, envelope: Envelope):
        """Classify an outgoing envelope under the active fault set.

        Caller must hold ``self._lock``.  Returns a triple
        ``(disposition, inbox, up)`` where disposition is ``"dead"``
        (unknown destination, dead-lettered), ``"held"`` (captured by a
        partition/cut/delay, released by :meth:`heal`) or ``"deliver"``.
        Shared with :class:`repro.runtime.sim.SimNetwork`, which applies
        the same fault semantics but schedules delivery as a virtual-time
        event instead of an immediate mailbox put.
        """
        self.sent_count += 1
        inbox = self._inboxes.get(envelope.dst)
        if inbox is None:
            self.dead_letters.append(envelope)
            return "dead", None, False
        if self._holds(envelope.src, envelope.dst):
            self._held.append(envelope)
            self.held_count += 1
            return "held", inbox, True  # held, not lost: delivered on heal()
        return "deliver", inbox, self._up.get(envelope.dst, False)

    def send(self, src: str, dst: str, payload: Any) -> bool:
        """Deliver ``payload`` into ``dst``'s mailbox.

        Returns True when the destination is up.  A known-but-down
        destination retains the message for its next incarnation (False
        is returned).  An unknown destination dead-letters it.
        """
        envelope = Envelope(src, dst, payload)
        with self._lock:
            disposition, inbox, up = self._route(envelope)
        if disposition == "deliver":
            inbox.put(envelope)
            return up
        return disposition == "held"

    def redeliver(self, node_id: str, payload: Any, src: str = "") -> None:
        """Put a dequeued-but-unhandled message back into the mailbox.

        Used when a node dies after dequeuing a message but before its
        handler ran: the message is still in flight from the
        specification's point of view.
        """
        with self._lock:
            inbox = self._inboxes.get(node_id)
            if inbox is None:
                inbox = queue.Queue()
                self._inboxes[node_id] = inbox
        inbox.put(Envelope(src, node_id, payload))

    def receive(self, node_id: str, timeout: Optional[float] = None) -> Optional[Envelope]:
        """Dequeue the next message for ``node_id`` (None on timeout)."""
        with self._lock:
            inbox = self._inboxes.get(node_id)
        if inbox is None:
            return None
        try:
            return inbox.get(timeout=timeout) if timeout is not None else inbox.get_nowait()
        except queue.Empty:
            return None

    def pending_count(self, node_id: str) -> int:
        with self._lock:
            inbox = self._inboxes.get(node_id)
        return inbox.qsize() if inbox is not None else 0

    # -- nemesis operations ---------------------------------------------------------
    def _crosses_cut(self, src: str, dst: str) -> bool:
        """True when an active partition separates ``src`` from ``dst``.

        Caller must hold ``self._lock``.  Node ids not named in any
        group (external clients, the testbed itself) see every node.
        """
        if not self._partition:
            return False
        src_group = self._partition.get(src)
        dst_group = self._partition.get(dst)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    def _holds(self, src: str, dst: str) -> bool:
        """True when an active fault holds a ``src -> dst`` message.

        Caller must hold ``self._lock``.  A delay consumes one unit of
        its hold budget per message; the link clears itself once the
        budget is spent (heal also clears it early).
        """
        if self._crosses_cut(src, dst):
            return True
        if (src, dst) in self._cuts:
            return True
        remaining = self._delays.get((src, dst), 0)
        if remaining > 0:
            if remaining == 1:
                del self._delays[(src, dst)]
            else:
                self._delays[(src, dst)] = remaining - 1
            return True
        return False

    def cut_link(self, src: str, dst: str) -> None:
        """Install an asymmetric cut: hold ``src -> dst`` traffic only.

        The reverse direction keeps flowing — the classic one-way
        network failure a symmetric partition cannot express.
        """
        with self._lock:
            self._cuts[(src, dst)] = True

    def delay_link(self, src: str, dst: str, count: int) -> None:
        """Hold the next ``count`` messages sent ``src -> dst``.

        A deterministic latency spike: the held prefix is released by
        :meth:`heal`, i.e. strictly after every message that was not
        delayed.  Deliberately not wall-clock based so replays are
        bit-deterministic.
        """
        if count < 1:
            raise ValueError(f"delay count must be >= 1, got {count}")
        with self._lock:
            self._delays[(src, dst)] = self._delays.get((src, dst), 0) + count

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Install a symmetric partition: nodes in different groups
        cannot exchange messages until :meth:`heal`."""
        assignment: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                if node_id in assignment:
                    raise ValueError(f"node {node_id!r} is in two groups")
                assignment[node_id] = index
        with self._lock:
            self._partition = assignment

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return bool(self._partition)

    @property
    def disrupted(self) -> bool:
        """True while any nemesis network fault is active: a partition,
        a link cut, an unspent delay, or held (undelivered) messages."""
        with self._lock:
            return bool(self._partition or self._cuts or self._delays
                        or self._held)

    def heal(self) -> int:
        """Remove every network fault (partition, link cuts, delays)
        and flush held messages, in send order.

        Returns the number of released envelopes.  Envelopes whose
        destination mailbox disappeared meanwhile go to dead_letters.
        """
        with self._lock:
            self._partition = {}
            self._cuts = {}
            self._delays = {}
            held, self._held = self._held, []
            inboxes = {e.dst: self._inboxes.get(e.dst) for e in held}
        for envelope in held:
            inbox = inboxes[envelope.dst]
            if inbox is None:
                self.dead_letters.append(envelope)
            else:
                inbox.put(envelope)
        return len(held)

    def held_snapshot(self) -> List[Envelope]:
        with self._lock:
            return list(self._held)

    def reorder_inbox(self, node_id: str, rng) -> int:
        """Permute ``node_id``'s mailbox with ``rng.shuffle``.

        Returns the number of messages permuted (0 for an empty or
        unknown mailbox).  The spec's in-flight bag is order-free, so a
        correct implementation is insensitive to this fault.
        """
        with self._lock:
            inbox = self._inboxes.get(node_id)
            if inbox is None:
                return 0
            backlog: List[Envelope] = []
            while True:
                try:
                    backlog.append(inbox.get_nowait())
                except queue.Empty:
                    break
            rng.shuffle(backlog)
            for envelope in backlog:
                inbox.put(envelope)
            self.reorder_count += 1
        return len(backlog)

    def corrupt_inbox(self, node_id: str, rng) -> Optional[Envelope]:
        """Corrupt one pending message in ``node_id``'s mailbox: the
        rng picks a victim, which is removed — modeling a frame whose
        checksum the receiver rejects.  Returns the removed envelope,
        or None when the mailbox is empty or unknown.  The loss is
        outside the spec's bag semantics, so this is a disruptive
        fault.
        """
        with self._lock:
            inbox = self._inboxes.get(node_id)
            if inbox is None:
                return None
            backlog: List[Envelope] = []
            while True:
                try:
                    backlog.append(inbox.get_nowait())
                except queue.Empty:
                    break
            if not backlog:
                return None
            victim = backlog.pop(rng.randrange(len(backlog)))
            for envelope in backlog:
                inbox.put(envelope)
            self.corrupt_count += 1
            self.corrupted.append(victim)
        return victim

    # -- synchronous RPC ------------------------------------------------------------
    def rpc(self, src: str, dst: str, payload: Any) -> Any:
        """Invoke ``dst``'s RPC handler in the caller's thread.

        Raises :class:`RpcError` when the peer is down or the handler
        fails — the caller sees the same failure a broken TCP connection
        would produce.
        """
        with self._lock:
            handler = self._rpc_handlers.get(dst)
            self.sent_count += 1
            # A synchronous call has no mailbox to hold it in, so cuts
            # fail it outright; delays do not apply (there is no
            # "later" for a blocking call).
            cut = self._crosses_cut(src, dst) or (src, dst) in self._cuts
        if cut:
            raise RpcError(f"rpc {src} -> {dst}: network partition")
        if handler is None:
            self.dead_letters.append(Envelope(src, dst, payload))
            raise RpcError(f"rpc {src} -> {dst}: peer is down")
        try:
            return handler(src, payload)
        except RpcError:
            raise
        except Exception as exc:
            raise RpcError(f"rpc {src} -> {dst} failed: {exc!r}") from exc

    def __repr__(self) -> str:
        with self._lock:
            up = sum(1 for v in self._up.values() if v)
            return (
                f"Network({up} up / {len(self._inboxes)} mailboxes, "
                f"sent={self.sent_count}, dead={len(self.dead_letters)})"
            )
