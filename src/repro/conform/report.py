"""Conformance verdicts: divergence records, near-miss ranking, reports.

A report is deliberately *timing-free*: two monitors fed the same log
against the same spec produce byte-identical text and JSON output, for
any worker count and any ``PYTHONHASHSEED`` — the same determinism
contract every other subsystem pins with guard tests.  Wall-clock
throughput lives in ``BENCH_conform.json``, not in the verdict.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["NearMiss", "LogDivergence", "ConformanceReport"]

#: JSON envelope version for ``mocket conform --format json``.
ENVELOPE_VERSION = 1


class NearMiss:
    """One ranked explanation of what the spec *would* have allowed.

    ``rank`` 0 candidates share the divergent event's action name but
    disagree on parameters; ``rank`` 1 candidates are other actions
    enabled in a compatible state.  ``state`` is a canonical state id.
    """

    __slots__ = ("rank", "state", "action", "params", "mismatches")

    def __init__(self, rank: int, state: int, action: str,
                 params: Dict[str, Any],
                 mismatches: Optional[List[str]] = None):
        self.rank = rank
        self.state = state
        self.action = action
        self.params = params
        self.mismatches = mismatches or []

    def describe(self) -> str:
        binding = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        head = f"state {self.state}: {self.action}({binding})"
        if self.mismatches:
            return f"{head} — differs on {', '.join(self.mismatches)}"
        return f"{head} — enabled here"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "state": self.state,
            "action": self.action,
            "params": self.params,
            "mismatches": self.mismatches,
        }


class LogDivergence:
    """The first log line at which no spec behaviour remains."""

    __slots__ = ("line", "session", "event", "action", "params", "reason",
                 "near_misses", "frontier")

    def __init__(self, line: int, session: Any, event: str,
                 action: Optional[str], params: Dict[str, Any], reason: str,
                 near_misses: List[NearMiss], frontier: List[int]):
        self.line = line               # 1-based log line number
        self.session = session
        self.event = event             # logged event name
        self.action = action           # bound spec action (None: unbound)
        self.params = params
        self.reason = reason           # "no-transition" | "unbound-event"
        self.near_misses = near_misses
        self.frontier = frontier       # compatible canonical state ids

    def headline(self) -> str:
        shown = self.action or self.event
        at = f" (session {self.session})" if self.session is not None else ""
        return f"line {self.line}{at}: {self.reason} for {shown!r}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "session": self.session,
            "event": self.event,
            "action": self.action,
            "params": self.params,
            "reason": self.reason,
            "frontier": self.frontier,
            "near_misses": [nm.as_dict() for nm in self.near_misses],
        }


class ConformanceReport:
    """The full outcome of one conformance run over one log."""

    def __init__(self, spec_name: str, log: str, adapter: str):
        self.spec_name = spec_name
        self.log = log
        self.adapter = adapter
        self.events = 0                 # observable events consumed
        self.matched = 0                # events that kept the walk alive
        self.skipped_unknown = 0        # unbound events skipped (opt-in)
        self.sessions = 0
        self.diverged_sessions = 0
        self.frontier_peak = 0
        self.spilled = 0                # frontier states dropped by the cap
        self.bounded = False            # True once any spill happened
        self.first_divergence: Optional[LogDivergence] = None

    @property
    def ok(self) -> bool:
        return self.first_divergence is None

    @property
    def verdict(self) -> str:
        return "conforms" if self.ok else "diverged"

    def as_dict(self) -> Dict[str, Any]:
        """The stable v1 JSON envelope (timing-free, fully deterministic)."""
        return {
            "version": ENVELOPE_VERSION,
            "spec": self.spec_name,
            "log": self.log,
            "adapter": self.adapter,
            "verdict": self.verdict,
            "events": self.events,
            "matched": self.matched,
            "skipped_unknown": self.skipped_unknown,
            "sessions": self.sessions,
            "diverged_sessions": self.diverged_sessions,
            "frontier_peak": self.frontier_peak,
            "bounded": self.bounded,
            "spilled": self.spilled,
            "first_divergence": (self.first_divergence.as_dict()
                                 if self.first_divergence else None),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [
            f"conformance: {self.verdict} "
            f"({self.events} events, {self.sessions} sessions, "
            f"spec {self.spec_name})",
            f"  matched {self.matched} events; frontier peak "
            f"{self.frontier_peak}"
            + (f"; spilled {self.spilled} states (bounded mode)"
               if self.bounded else ""),
        ]
        if self.skipped_unknown:
            lines.append(f"  skipped {self.skipped_unknown} unbound events")
        div = self.first_divergence
        if div is not None:
            lines.append(f"  first divergence at {div.headline()}")
            lines.append(f"  diverged sessions: {self.diverged_sessions}")
            if div.near_misses:
                lines.append("  nearest spec behaviours:")
                for miss in div.near_misses:
                    lines.append(f"    {miss.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ConformanceReport({self.verdict}, {self.events} events, "
                f"{self.sessions} sessions)")
