"""The conformance monitor: a constrained walk over the verified graph.

A captured log is a *partial observation* of a run: it names the action
each event witnessed and (at best) part of the parameter binding, never
the full system state.  Validating it against the spec therefore tracks
the **set of compatible states** — all canonical graph nodes some spec
behaviour could occupy after the events seen so far — rather than a
single path (Cirstea/Kuppe/Loillier/Merz, "Validating Traces of
Distributed Programs Against TLA+ Specifications"):

* the walk starts from the closure of the initial states,
* each observed event keeps exactly the successors reachable by an
  edge whose action matches the event's binding and whose parameters
  agree on every *observed* parameter,
* spec actions with no event binding are *unobservable*: the walk may
  take any number of them silently between observations (an epsilon
  closure),
* the first event for which no compatible state remains is the
  divergence, reported with the log line number and a ranked list of
  near-miss transitions the spec would have allowed.

Memory is bounded TLC-style for unbounded production logs: the tracked
frontier is capped (``max_frontier``) with a deterministic spill policy
— keep the lowest canonical state ids, count the rest.  Spilling only
ever *shrinks* the tracked set, so a ``conforms`` verdict remains sound;
a divergence found after any spill is flagged ``bounded`` because the
dropped states might have explained the log (docs/CONFORMANCE.md).

Everything is deterministic: the graph is canonicalized up front, all
iteration orders are sorted, and reports carry no timing — identical
verdicts and first-divergence line for any ``--workers`` count and any
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.mapping import SpecMapping
from ..engine import canonicalize
from ..obs import METRICS, TRACER
from ..obs.tracer import jsonable
from ..engine.fingerprint import encode_canonical
from ..tlaplus.graph import StateGraph
from .adapters import LogAdapter, LogEvent, get_adapter
from .report import ConformanceReport, LogDivergence, NearMiss

__all__ = ["ConformanceOptions", "ConformanceMonitor", "conform_log"]

_UNSET = object()   # "no session seen yet" sentinel (None is a valid session)


@dataclass
class ConformanceOptions:
    """Tunables for one conformance run (all deterministic)."""

    max_frontier: int = 4096     # frontier cap; lowest ids kept on spill
    explain: int = 5             # near-miss transitions listed at divergence
    explain_states: int = 8      # frontier states sampled for near-misses
    ignore_unknown: bool = False  # skip unbound events instead of diverging


class ConformanceMonitor:
    """Feed observed events through the spec's canonical state graph.

    ``mapping`` supplies the event→action binding table and the constant
    translation; pass ``None`` for spec-only conformance, where every
    event is assumed to name a spec action directly.
    """

    def __init__(self, graph: StateGraph, mapping: Optional[SpecMapping] = None,
                 options: Optional[ConformanceOptions] = None):
        self.options = options or ConformanceOptions()
        # renumber into content-only canonical form first: verdicts and
        # reported state ids must not depend on how (or with how many
        # workers) the graph was explored
        self.graph = canonicalize(graph)
        self.mapping = mapping
        self.spec_name = self.graph.spec_name
        # per-state action index: name -> [(jsonable params, dst)], in
        # canonical (encoded-params, dst) order
        self._index: List[Dict[str, List[Tuple[Dict[str, Any], int]]]] = []
        for node_id in range(self.graph.num_states):
            by_name: Dict[str, List[Tuple[Dict[str, Any], int]]] = {}
            edges = sorted(
                self.graph.out_edges(node_id),
                key=lambda e: (e.label.name, encode_canonical(e.label.params),
                               e.dst))
            for edge in edges:
                by_name.setdefault(edge.label.name, []).append(
                    (jsonable(edge.label.params), edge.dst))
            self._index.append(by_name)
        self._action_names = self.graph.action_names()
        if mapping is not None and mapping.events:
            self._bindings = mapping.events
            self._unobservable = (set(mapping.spec.actions)
                                  & self._action_names) - mapping.bound_actions()
        else:
            self._bindings = None          # identity binding on action names
            self._unobservable = set()
        self._closure_memo: Dict[int, Tuple[int, ...]] = {}
        self._trans_cache: Dict[Any, Any] = {}
        self._initial = self._closure(set(self.graph.initial_ids))
        # -- walk state -------------------------------------------------------
        self.frontier: Set[int] = set()
        self._session: Any = _UNSET
        self._skipping = False       # a diverged session drains silently
        # -- accounting -------------------------------------------------------
        self.events = 0
        self.matched = 0
        self.skipped_unknown = 0
        self.sessions = 0
        self.diverged_sessions = 0
        self.frontier_peak = 0
        self.spilled = 0
        self.first_divergence: Optional[LogDivergence] = None

    # -- the walk -------------------------------------------------------------
    def _closure(self, frontier: Set[int]) -> Set[int]:
        """Epsilon closure over unobservable actions."""
        if not self._unobservable:
            return frontier
        out = set(frontier)
        stack = list(frontier)
        while stack:
            node_id = stack.pop()
            cached = self._closure_memo.get(node_id)
            if cached is not None:
                for dst in cached:
                    if dst not in out:
                        out.add(dst)
                        stack.append(dst)
                continue
            reach: Set[int] = set()
            inner = [node_id]
            while inner:
                sid = inner.pop()
                for name, edges in self._index[sid].items():
                    if name in self._unobservable:
                        for _, dst in edges:
                            if dst not in reach and dst != node_id:
                                reach.add(dst)
                                inner.append(dst)
            self._closure_memo[node_id] = tuple(reach)
            for dst in reach:
                if dst not in out:
                    out.add(dst)
                    stack.append(dst)
        return out

    def _translate(self, value: Any) -> Any:
        """Translate one observed param value into the spec's jsonable domain."""
        if self.mapping is None:
            return value
        try:
            cached = self._trans_cache.get(value, _UNSET)
        except TypeError:
            return jsonable(self.mapping.to_spec_value(value))
        if cached is _UNSET:
            cached = jsonable(self.mapping.to_spec_value(value))
            self._trans_cache[value] = cached
        return cached

    def _observed_params(self, event: LogEvent) -> Dict[str, Any]:
        params = event.params
        if not params:
            return {}
        if self._bindings is not None:
            binding = self._bindings.get(event.name)
            if binding is not None and binding.params is not None:
                params = dict(binding.params(params))
        return {key: self._translate(value) for key, value in params.items()}

    @staticmethod
    def _matches(edge_params: Dict[str, Any], observed: Dict[str, Any]) -> bool:
        """Partial-observation match: every observed param present on the
        edge label must agree; unobserved label params are unconstrained."""
        if edge_params == observed:
            return True
        for key, value in observed.items():
            if key in edge_params and edge_params[key] != value:
                return False
        return True

    def _resolve(self, event: LogEvent) -> Optional[str]:
        """The spec action ``event`` witnesses, or None when unbound."""
        if self._bindings is not None:
            binding = self._bindings.get(event.name)
            return binding.action if binding is not None else None
        return event.name if event.name in self._action_names else None

    def feed(self, event: LogEvent) -> bool:
        """Consume one observed event; False once the log has diverged
        in the current session (draining until the next session)."""
        self.events += 1
        if event.session is not self._session and event.session != self._session:
            self._session = event.session
            self.sessions += 1
            self._skipping = False
            self.frontier = set(self._initial)
        if self._skipping:
            return False
        action = self._resolve(event)
        if action is None:
            if self.options.ignore_unknown:
                self.skipped_unknown += 1
                return True
            self._diverge(event, None, {}, "unbound-event")
            return False
        observed = self._observed_params(event)
        closure = self._closure(self.frontier)
        matched: Set[int] = set()
        for node_id in closure:
            edges = self._index[node_id].get(action)
            if not edges:
                continue
            for edge_params, dst in edges:
                if dst not in matched and self._matches(edge_params, observed):
                    matched.add(dst)
        if not matched:
            self._diverge(event, action, observed, "no-transition",
                          closure=closure)
            return False
        if len(matched) > self.options.max_frontier:
            kept = sorted(matched)[: self.options.max_frontier]
            self.spilled += len(matched) - len(kept)
            matched = set(kept)
        self.frontier = matched
        self.matched += 1
        if len(matched) > self.frontier_peak:
            self.frontier_peak = len(matched)
        if TRACER.enabled:
            TRACER.emit("conform.match", line=event.line, action=action,
                        frontier=len(matched))
            METRICS.counter("conform.matched").inc()
        return True

    def _diverge(self, event: LogEvent, action: Optional[str],
                 observed: Dict[str, Any], reason: str,
                 closure: Optional[Set[int]] = None) -> None:
        self.diverged_sessions += 1
        self._skipping = True
        if TRACER.enabled:
            TRACER.emit("conform.diverge", line=event.line,
                        event=event.name, action=action, reason=reason)
            METRICS.counter("conform.diverged").inc()
        if self.first_divergence is not None:
            return
        closure = closure if closure is not None else self._closure(self.frontier)
        self.first_divergence = LogDivergence(
            line=event.line, session=event.session, event=event.name,
            action=action, params=observed, reason=reason,
            near_misses=self._near_misses(closure, action, observed),
            frontier=sorted(closure),
        )

    def _near_misses(self, closure: Set[int], action: Optional[str],
                     observed: Dict[str, Any]) -> List[NearMiss]:
        """Ranked candidate transitions from the last compatible states."""
        misses: List[NearMiss] = []
        seen: Set[Tuple[str, str]] = set()
        for node_id in sorted(closure)[: self.options.explain_states]:
            for name in sorted(self._index[node_id]):
                for edge_params, _dst in self._index[node_id][name]:
                    key = (name, json.dumps(edge_params, sort_keys=True))
                    if key in seen:
                        continue
                    seen.add(key)
                    if name == action:
                        mismatches = sorted(
                            f"{k} (log: {observed[k]!r})"
                            for k in observed
                            if k in edge_params and edge_params[k] != observed[k])
                        misses.append(NearMiss(0, node_id, name, edge_params,
                                               mismatches))
                    else:
                        misses.append(NearMiss(1, node_id, name, edge_params))
        misses.sort(key=lambda m: (m.rank, m.action,
                                   json.dumps(m.params, sort_keys=True),
                                   m.state))
        return misses[: self.options.explain]

    # -- driving --------------------------------------------------------------
    def run(self, events: Iterable[LogEvent], log: str = "<log>",
            adapter: str = "obs") -> ConformanceReport:
        """Feed every event, then :meth:`finish`."""
        for event in events:
            self.feed(event)
        return self.finish(log=log, adapter=adapter)

    def finish(self, log: str = "<log>", adapter: str = "obs") -> ConformanceReport:
        report = ConformanceReport(self.spec_name, log, adapter)
        report.events = self.events
        report.matched = self.matched
        report.skipped_unknown = self.skipped_unknown
        report.sessions = self.sessions
        report.diverged_sessions = self.diverged_sessions
        report.frontier_peak = self.frontier_peak
        report.spilled = self.spilled
        report.bounded = self.spilled > 0
        report.first_divergence = self.first_divergence
        if TRACER.enabled:
            METRICS.counter("conform.events").inc(self.events)
            METRICS.counter("conform.sessions").inc(self.sessions)
            METRICS.gauge("conform.frontier_peak").max(self.frontier_peak)
            METRICS.counter("conform.spilled").inc(self.spilled)
            div = self.first_divergence
            TRACER.emit("conform.done", verdict=report.verdict,
                        spec=self.spec_name, events=self.events,
                        matched=self.matched, sessions=self.sessions,
                        diverged=self.diverged_sessions,
                        line=div.line if div else None,
                        action=(div.action or div.event) if div else None)
        return report


def conform_log(graph: StateGraph, mapping: Optional[SpecMapping], source,
                adapter: str = "obs",
                options: Optional[ConformanceOptions] = None,
                monitor: Optional[ConformanceMonitor] = None) -> ConformanceReport:
    """Validate one captured log against a verified state graph.

    ``source`` is a path or an open text handle; ``adapter`` names a
    registered :class:`~repro.conform.adapters.LogAdapter`.  The log is
    streamed — never materialized — so arbitrarily large logs run in
    bounded memory.
    """
    reader: LogAdapter = get_adapter(adapter)
    if monitor is None:
        monitor = ConformanceMonitor(graph, mapping, options)
    label = source if isinstance(source, str) else getattr(source, "name", "<log>")
    return monitor.run(reader.read(source), log=label, adapter=adapter)
