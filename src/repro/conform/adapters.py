"""Log adapters: turn an externally captured log into observed events.

Trace conformance consumes *logs*, not live clusters.  A
:class:`LogAdapter` parses one log line into at most one
:class:`LogEvent` — the observation the monitor feeds through the state
graph.  The native adapter reads the ``repro.obs`` JSONL format (the
``runner.step`` records the testbed writes under ``--trace``); the
``jsonl`` adapter accepts a minimal foreign schema so logs from any
deployment can be validated after the fact.  New formats plug in via
:func:`register_adapter`.

All adapters are streaming: :meth:`LogAdapter.read` yields events one
line at a time and never materializes the log, so unbounded production
logs stay checkable under bounded memory (see docs/CONFORMANCE.md).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, Optional, TextIO, Tuple, Type, Union

__all__ = [
    "LogEvent",
    "LogAdapter",
    "ObsJsonlAdapter",
    "ActionJsonlAdapter",
    "adapter_names",
    "get_adapter",
    "register_adapter",
]


class LogEvent:
    """One observed action occurrence in a captured log.

    ``params`` is a *partial* observation: a log rarely captures the
    full parameter binding of the spec action it witnesses, so the
    monitor only constrains the parameters that are present.
    ``session`` groups events into independent behaviours (one test
    case, one request session); each new session restarts the walk from
    the spec's initial states.
    """

    __slots__ = ("line", "name", "params", "session")

    def __init__(self, line: int, name: str,
                 params: Optional[Dict[str, Any]] = None,
                 session: Optional[Any] = None):
        self.line = line            # 1-based log line number
        self.name = name            # logged event name (pre-binding)
        self.params = params or {}
        self.session = session

    def __repr__(self) -> str:
        at = f"#{self.session}" if self.session is not None else ""
        return f"LogEvent(line {self.line}{at}: {self.name} {self.params!r})"


class LogAdapter:
    """Base adapter: line-oriented parsing with a streaming driver."""

    #: registry key; subclasses set it and call :func:`register_adapter`
    name = ""

    def parse(self, line_no: int, line: str) -> Optional[LogEvent]:
        """Parse one log line; return None for lines that carry no
        observable action (comments, other record kinds)."""
        raise NotImplementedError

    def read(self, source: Union[str, TextIO]) -> Iterator[LogEvent]:
        """Stream events from a path or an open text handle."""
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                yield from self._read_lines(handle, source)
        else:
            yield from self._read_lines(source, getattr(source, "name", "<log>"))

    def _read_lines(self, handle: Iterable[str], label: str) -> Iterator[LogEvent]:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = self.parse(line_no, line)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{label}:{line_no}: not a {self.name!r} log record: {exc}"
                ) from None
            if event is not None:
                yield event


class ObsJsonlAdapter(LogAdapter):
    """The native ``repro.obs`` JSONL trace format.

    Observable events are the ``runner.step`` records; the ``case``
    field is the session id and the ``params`` field (present in traces
    recorded since the conform subsystem landed) carries the parameter
    binding.  Every other record kind (spans, scheduler notifications,
    fault events) is unobservable noise and is skipped.
    """

    name = "obs"

    def parse(self, line_no: int, line: str) -> Optional[LogEvent]:
        record = json.loads(line)
        if record.get("name") != "runner.step":
            return None
        fields = record.get("fields", {})
        action = fields.get("action")
        if action is None:
            return None
        params = fields.get("params")
        if not isinstance(params, dict):
            params = {}
        return LogEvent(line_no, action, params, session=fields.get("case"))


class ActionJsonlAdapter(LogAdapter):
    """A minimal foreign schema: one JSON object per line.

    ``{"action": NAME}`` is the only required key; ``"params"`` (object)
    and ``"session"`` (any scalar; ``"case"`` is accepted as an alias)
    are optional.  This is the integration point for deployments that
    do not use the repro tracer: emit one such line per state-changing
    operation and the monitor can validate the run.
    """

    name = "jsonl"

    def parse(self, line_no: int, line: str) -> Optional[LogEvent]:
        record = json.loads(line)
        action = record.get("action") or record.get("event")
        if action is None:
            raise ValueError("record has no 'action' key")
        params = record.get("params")
        if not isinstance(params, dict):
            params = {}
        session = record.get("session", record.get("case"))
        return LogEvent(line_no, str(action), params, session=session)


_ADAPTERS: Dict[str, Type[LogAdapter]] = {}


def register_adapter(adapter_cls: Type[LogAdapter]) -> Type[LogAdapter]:
    """Register a :class:`LogAdapter` subclass under its ``name``."""
    if not adapter_cls.name:
        raise ValueError(f"adapter {adapter_cls.__name__} has no name")
    if adapter_cls.name in _ADAPTERS:
        raise ValueError(f"duplicate adapter name {adapter_cls.name!r}")
    _ADAPTERS[adapter_cls.name] = adapter_cls
    return adapter_cls


register_adapter(ObsJsonlAdapter)
register_adapter(ActionJsonlAdapter)


def get_adapter(name: str) -> LogAdapter:
    """Instantiate the registered adapter called ``name``."""
    try:
        return _ADAPTERS[name]()
    except KeyError:
        known = "|".join(sorted(_ADAPTERS))
        raise ValueError(f"unknown log adapter {name!r} (known: {known})") from None


def adapter_names() -> Tuple[str, ...]:
    return tuple(sorted(_ADAPTERS))
