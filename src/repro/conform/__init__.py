"""Production trace conformance: validate captured logs against the spec.

The model checking guided pipeline verifies a spec, explores its state
graph and drives the implementation along verified paths.  This package
closes the remaining gap: logs captured *outside* the harness — from a
staging cluster, a production incident, a foreign test rig — are
replayed through the same canonical state graph after the fact.  Because
a log is only a partial observation, the monitor tracks the full set of
compatible spec states and reports the first line at which no spec
behaviour remains, with a ranked near-miss explanation.

Layers:

* :mod:`repro.conform.adapters` — pluggable streaming log parsers
  (native ``repro.obs`` JSONL plus a minimal foreign ``jsonl`` schema).
* :mod:`repro.conform.monitor` — the frontier-set walk over the
  canonicalized graph, with TLC-style bounded memory.
* :mod:`repro.conform.report` — deterministic, timing-free verdicts.

CLI: ``mocket conform LOG --spec <target>`` (docs/CONFORMANCE.md).
"""

from .adapters import (
    ActionJsonlAdapter,
    LogAdapter,
    LogEvent,
    ObsJsonlAdapter,
    adapter_names,
    get_adapter,
    register_adapter,
)
from .monitor import ConformanceMonitor, ConformanceOptions, conform_log
from .report import ConformanceReport, LogDivergence, NearMiss

__all__ = [
    "ActionJsonlAdapter",
    "ConformanceMonitor",
    "ConformanceOptions",
    "ConformanceReport",
    "LogAdapter",
    "LogDivergence",
    "LogEvent",
    "NearMiss",
    "ObsJsonlAdapter",
    "adapter_names",
    "conform_log",
    "get_adapter",
    "register_adapter",
]
