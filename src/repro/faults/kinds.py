"""Vocabulary of the nemesis layer: injection modes and chaos kinds.

Two injection modes, with very different soundness stories:

* **modeled** — the fault is an action of the specification (``Restart``,
  ``DropMessage``, ``DuplicateMessage``).  The planner splices the
  fault's *verified* graph edge into a test-case path, so the derived
  case is still a behaviour of the state space and per-step
  expected-state checking stays sound.
* **chaos** — the fault is *not* in the specification.  Transparent
  kinds (partition + heal, mailbox reorder, one-way link cuts, partial
  partitions, per-link delay) are invisible to the spec's semantics —
  the message bag is order-free and a cut/delay only holds delivery
  until heal — so per-step checking is kept.  Disruptive kinds (bounce,
  crash, message corruption) perturb node or network state outside the
  verified space, so the runner switches the case to *convergence
  mode*: per-step state equality is relaxed and the implementation must
  re-converge to the final verified state within a bounded retry
  budget, or the case is reported.
"""

from __future__ import annotations

import enum

__all__ = [
    "InjectionMode",
    "ChaosKind",
    "TRANSPARENT_KINDS",
    "DISRUPTIVE_KINDS",
]


class InjectionMode(enum.Enum):
    MODELED = "modeled"
    CHAOS = "chaos"


class ChaosKind(enum.Enum):
    """Spec-unmodeled faults the nemesis can apply at runtime."""

    PARTITION = "partition"   # isolate one node behind a symmetric cut
    REORDER = "reorder"       # permute one node's mailbox backlog
    LINK_CUT = "link_cut"     # asymmetric cut: hold src->dst only
    PARTIAL_PARTITION = "partial_partition"  # cut off an arbitrary subset
    DELAY = "delay"           # hold the next N messages on one link
    BOUNCE = "bounce"         # crash + immediate restart (volatile state lost)
    CRASH = "crash"           # crash, never restarted within the case
    CORRUPT = "corrupt"       # corrupt one in-flight message (checksum drop)


# Chaos kinds the specification cannot observe: the message bag is
# order-free and a partition/cut/delay holds (not drops) messages, so a
# correct implementation behaves identically once healed.
TRANSPARENT_KINDS = frozenset({
    ChaosKind.PARTITION,
    ChaosKind.REORDER,
    ChaosKind.LINK_CUT,
    ChaosKind.PARTIAL_PARTITION,
    ChaosKind.DELAY,
})

# Chaos kinds that perturb node or network state outside the verified
# state space; these switch the case to convergence-mode checking.
# CORRUPT is disruptive because the corrupted message is *lost* (the
# receiver's checksum rejects it), which the spec's bag never models.
DISRUPTIVE_KINDS = frozenset({
    ChaosKind.BOUNCE,
    ChaosKind.CRASH,
    ChaosKind.CORRUPT,
})
