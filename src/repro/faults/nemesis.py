"""The nemesis: applies chaos injections to a live cluster.

One :class:`Nemesis` instance serves one test case (the fault runner
creates it lazily and discards it at case end).  Every application is
recorded as a timing-free summary string — these flow into
``TestCaseResult.injected_faults`` and the triage report — and emitted
as a ``fault.inject`` trace event with a per-kind counter, mirroring
the runner's existing ``fault.injected`` events for modeled faults.
"""

from __future__ import annotations

import random
from typing import List

from ..obs import METRICS, TRACER
from .kinds import ChaosKind
from .plan import FaultInjection

__all__ = ["Nemesis"]


class Nemesis:
    """Applies chaos-mode injections against one deployed cluster."""

    def __init__(self, cluster, runtime, rng: random.Random, case_id: int):
        self.cluster = cluster
        self.runtime = runtime
        self.rng = rng
        self.case_id = case_id
        self.applied: List[str] = []

    def apply(self, injection: FaultInjection) -> str:
        """Apply one injection; returns (and records) its summary."""
        kind = ChaosKind(injection.kind)
        effect = ""
        if kind is ChaosKind.PARTITION:
            self.cluster.isolate(injection.params["isolate"])
        elif kind is ChaosKind.PARTIAL_PARTITION:
            self.cluster.partition_group(list(injection.params["group"]))
        elif kind is ChaosKind.LINK_CUT:
            self.cluster.cut_link(injection.params["src"],
                                  injection.params["dst"])
        elif kind is ChaosKind.DELAY:
            self.cluster.delay_link(injection.params["src"],
                                    injection.params["dst"],
                                    int(injection.params["count"]))
        elif kind is ChaosKind.REORDER:
            permuted = self.cluster.network.reorder_inbox(
                injection.params["node"], self.rng)
            effect = f" ({permuted} messages permuted)"
        elif kind is ChaosKind.CORRUPT:
            victim = self.cluster.network.corrupt_inbox(
                injection.params["node"], self.rng)
            effect = (" (no pending messages)" if victim is None
                      else f" (dropped {victim.src} -> {victim.dst})")
        elif kind is ChaosKind.BOUNCE:
            node = self.cluster.restart_node(injection.params["node"])
            self.runtime.snapshot_node(node)
            effect = f" (incarnation {node.incarnation})"
        elif kind is ChaosKind.CRASH:
            node_id = injection.params["node"]
            if self.cluster.is_up(node_id):
                self.cluster.crash_node(node_id)
            else:
                effect = " (already down)"
        else:  # pragma: no cover - ChaosKind() above rejects unknown kinds
            raise ValueError(f"unsupported chaos kind {injection.kind!r}")
        summary = injection.summary() + effect
        self.applied.append(summary)
        if TRACER.enabled:
            TRACER.emit("fault.inject", case=self.case_id, kind=kind.value,
                        step=injection.step_index,
                        params=dict(injection.params))
            METRICS.counter(f"faults.injected.{kind.value}").inc()
        return summary

    def heal_all(self) -> int:
        """Heal every active network fault (partition, link cuts,
        delays); returns the released message count."""
        if not self.cluster.network.disrupted:
            return 0
        released = self.cluster.heal()
        if TRACER.enabled:
            TRACER.emit("fault.heal", case=self.case_id, released=released)
            METRICS.counter("faults.healed").inc()
        return released
