"""Attributing divergences to injected faults.

A fault-injection run produces divergences of two very different
natures: those *caused by the nemesis* (a crashed node can never
notify; a bounced node lost volatile state) and those the faults merely
*uncovered* (a genuine implementation or specification bug).  Triage
separates them mechanically:

* a divergence in a **derived case** (a modeled fault splice) is
  attributed to its splice,
* a divergence in a chaos-perturbed case is attributed to every
  injection applied **at or before** the divergence step,
* everything else is **unattributed** — the interesting output, worth
  an investigator's time, and the only thing that fails the CLI run.

Every failure carries a **stable id** (:func:`divergence_id`): a
blake2b fingerprint of the divergence kind, the action, and the
fingerprint of the verified state the case had confirmed when things
went wrong.  The id is graph-anchored — independent of case numbering,
suite truncation, seeds, worker counts and ``PYTHONHASHSEED`` — so the
fuzzer's bias list and the corpus bug table dedup deterministically,
and "the same bug" keeps the same name across campaigns.

The triage payload is deliberately timing-free, so two runs with the
same seed render byte-identical triage (the determinism guard checks
this across worker counts).  Passing ``graph=`` additionally records
the run's visited-fingerprint coverage (see :mod:`repro.fuzz`), which
is how an ordinary chaos run's payload can seed a fuzz corpus.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.testbed.report import Divergence, SuiteResult
from ..core.testgen.testcase import TestCase
from ..engine.fingerprint import fingerprint_state, fingerprint_value
from ..tlaplus.graph import StateGraph
from .plan import FaultPlan

__all__ = ["divergence_id", "triage", "render_triage"]


def divergence_id(case: TestCase,
                  divergence: Divergence) -> Tuple[str, int]:
    """``(stable_id, anchor_fp)`` for one divergence.

    The anchor is the fingerprint of the last *verified* state the case
    confirmed before diverging (the initial state for step ``-1``, the
    final state for the end-of-case check).  The id hashes
    ``(kind, action, anchor)`` — two failures get the same id exactly
    when the same kind of thing went wrong, on the same action, at the
    same point of the verified state space.
    """
    step = divergence.step_index
    if step <= 0:
        anchor_state = case.initial_state
    elif step >= len(case.steps):
        anchor_state = case.final_state
    else:
        anchor_state = case.steps[step - 1].expected_state
    anchor = fingerprint_state(anchor_state)
    stamp = fingerprint_value((divergence.kind.value,
                               divergence.action or "", anchor))
    return f"dv-{stamp:016x}", anchor


def triage(outcome: SuiteResult, plan: FaultPlan,
           graph: Optional[StateGraph] = None) -> Dict[str, Any]:
    """Build the timing-free triage payload for a fault run."""
    derived = {injection.derived_case_id: injection
               for injection in plan.modeled()}
    failures: List[Dict[str, Any]] = []
    for result in outcome.failures:
        divergence = result.divergence
        case_id = result.case.case_id
        attributed: List[str] = []
        if case_id in derived:
            attributed.append(derived[case_id].summary())
        for injection in plan.chaos_for(case_id):
            if injection.step_index <= divergence.step_index:
                attributed.append(injection.summary())
        stable_id, _anchor = divergence_id(result.case, divergence)
        failures.append({
            "id": stable_id,
            "case_id": case_id,
            "kind": divergence.kind.value,
            "step_index": divergence.step_index,
            "action": divergence.action,
            "headline": divergence.headline(),
            "injected_faults": list(result.injected_faults),
            "attributed_to": attributed,
            "verdict": "fault-induced" if attributed else "unattributed",
        })
    payload = {
        "seed": plan.seed,
        "chaos": plan.chaos,
        "target": plan.target,
        "cases": len(outcome.results),
        "divergent": len(failures),
        "injected": plan.counts_by_kind(),
        "unattributed": sum(1 for f in failures
                            if f["verdict"] == "unattributed"),
        "failures": failures,
    }
    if graph is not None:
        from ..fuzz.fingerprint import run_coverage

        coverage = run_coverage(outcome)
        payload["coverage"] = {
            "graph_states": graph.num_states,
            "graph_edges": graph.num_edges,
            **coverage.to_jsonable(),
        }
    return payload


def render_triage(payload: Dict[str, Any]) -> str:
    """Human-readable triage table."""
    injected = ", ".join(f"{kind}={count}" for kind, count
                         in payload["injected"].items()) or "none"
    lines = [
        f"fault triage (seed {payload['seed']!r}"
        f"{', chaos' if payload['chaos'] else ''}): "
        f"{payload['cases']} cases, {payload['divergent']} divergent, "
        f"{payload['unattributed']} unattributed",
        f"  injected: {injected}",
    ]
    for failure in payload["failures"]:
        lines.append(f"  case #{failure['case_id']} step "
                     f"{failure['step_index']}: {failure['headline']} "
                     f"[{failure['verdict']}]")
        if failure["verdict"] == "unattributed":
            lines.append(f"    id: {failure['id']}")
        for summary in failure["attributed_to"]:
            lines.append(f"    <- {summary}")
    coverage = payload.get("coverage")
    if coverage:
        lines.append(
            f"  coverage: {len(coverage['states'])} of "
            f"{coverage['graph_states']} states, "
            f"{len(coverage['edges'])} of {coverage['graph_edges']} "
            f"edges visited")
    return "\n".join(lines)
