"""Attributing divergences to injected faults.

A fault-injection run produces divergences of two very different
natures: those *caused by the nemesis* (a crashed node can never
notify; a bounced node lost volatile state) and those the faults merely
*uncovered* (a genuine implementation or specification bug).  Triage
separates them mechanically:

* a divergence in a **derived case** (a modeled fault splice) is
  attributed to its splice,
* a divergence in a chaos-perturbed case is attributed to every
  injection applied **at or before** the divergence step,
* everything else is **unattributed** — the interesting output, worth
  an investigator's time, and the only thing that fails the CLI run.

The triage payload is deliberately timing-free, so two runs with the
same seed render byte-identical triage (the determinism guard checks
this across worker counts).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.testbed.report import SuiteResult
from .plan import FaultPlan

__all__ = ["triage", "render_triage"]


def triage(outcome: SuiteResult, plan: FaultPlan) -> Dict[str, Any]:
    """Build the timing-free triage payload for a fault run."""
    derived = {injection.derived_case_id: injection
               for injection in plan.modeled()}
    failures: List[Dict[str, Any]] = []
    for result in outcome.failures:
        divergence = result.divergence
        case_id = result.case.case_id
        attributed: List[str] = []
        if case_id in derived:
            attributed.append(derived[case_id].summary())
        for injection in plan.chaos_for(case_id):
            if injection.step_index <= divergence.step_index:
                attributed.append(injection.summary())
        failures.append({
            "case_id": case_id,
            "kind": divergence.kind.value,
            "step_index": divergence.step_index,
            "action": divergence.action,
            "headline": divergence.headline(),
            "injected_faults": list(result.injected_faults),
            "attributed_to": attributed,
            "verdict": "fault-induced" if attributed else "unattributed",
        })
    return {
        "seed": plan.seed,
        "chaos": plan.chaos,
        "target": plan.target,
        "cases": len(outcome.results),
        "divergent": len(failures),
        "injected": plan.counts_by_kind(),
        "unattributed": sum(1 for f in failures
                            if f["verdict"] == "unattributed"),
        "failures": failures,
    }


def render_triage(payload: Dict[str, Any]) -> str:
    """Human-readable triage table."""
    injected = ", ".join(f"{kind}={count}" for kind, count
                         in payload["injected"].items()) or "none"
    lines = [
        f"fault triage (seed {payload['seed']!r}"
        f"{', chaos' if payload['chaos'] else ''}): "
        f"{payload['cases']} cases, {payload['divergent']} divergent, "
        f"{payload['unattributed']} unattributed",
        f"  injected: {injected}",
    ]
    for failure in payload["failures"]:
        lines.append(f"  case #{failure['case_id']} step "
                     f"{failure['step_index']}: {failure['headline']} "
                     f"[{failure['verdict']}]")
        for summary in failure["attributed_to"]:
            lines.append(f"    <- {summary}")
    return "\n".join(lines)
