"""Static legality checking of fault plans.

The planner only ever *emits* legal plans, but the fuzzer *mutates*
them — splicing, transposing, strengthening and weakening injections —
so legality needs to be checkable after the fact.  :func:`plan_violations`
re-states the k-budget rules the planner documents (and PR-5 pinned):

* at most one **disruptive** injection per case — disruptive windows
  must not overlap, because convergence-mode checking needs a single
  perturbation to converge from,
* at most one **partition-family** injection (partition /
  partial-partition) per case — a second would overwrite the first's
  groups,
* link cuts, delays and reorders stack freely,
* chaos step indices stay in planner range: ``[1, len-1]`` for
  transparent kinds, ``[1, len]`` for disruptive ones (an index equal
  to the case length means "after the last step"),
* modeled splices must be real graph paths: the spliced edge leaves
  the state the base case reaches at the splice position, the tail is
  contiguous, and the derived case id collides with nothing,
* with ``max_faults_per_case=k``: at most ``k`` chaos injections per
  case (at ``k=1`` a single disruptive window may ride on top of the
  base transparent injection — the legacy ``--chaos`` shape), and at
  most ``k`` fault edges per modeled splice chain.

An empty return value means the plan is executable by
:class:`~repro.faults.runner.FaultRunner` under exactly the guarantees
the planner gives its own output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.testgen.testcase import TestSuite
from ..tlaplus.graph import StateGraph
from .kinds import ChaosKind, DISRUPTIVE_KINDS, InjectionMode
from .plan import FaultInjection, FaultPlan

__all__ = ["plan_violations", "plan_is_legal"]

_PARTITION_FAMILY = frozenset({ChaosKind.PARTITION,
                               ChaosKind.PARTIAL_PARTITION})

#: required parameter keys per chaos kind (nemesis ``apply`` contract)
_REQUIRED_PARAMS = {
    ChaosKind.PARTITION: ("isolate",),
    ChaosKind.PARTIAL_PARTITION: ("group",),
    ChaosKind.LINK_CUT: ("src", "dst"),
    ChaosKind.DELAY: ("src", "dst", "count"),
    ChaosKind.REORDER: ("node",),
    ChaosKind.CORRUPT: ("node",),
    ChaosKind.BOUNCE: ("node",),
    ChaosKind.CRASH: ("node",),
}


def plan_is_legal(plan: FaultPlan, suite: TestSuite,
                  graph: Optional[StateGraph] = None,
                  node_ids: Optional[Sequence[str]] = None,
                  max_faults_per_case: Optional[int] = None) -> bool:
    """True when :func:`plan_violations` finds nothing."""
    return not plan_violations(plan, suite, graph=graph, node_ids=node_ids,
                               max_faults_per_case=max_faults_per_case)


def plan_violations(plan: FaultPlan, suite: TestSuite,
                    graph: Optional[StateGraph] = None,
                    node_ids: Optional[Sequence[str]] = None,
                    max_faults_per_case: Optional[int] = None) -> List[str]:
    """Every way ``plan`` breaks the planner's legality rules.

    ``graph`` enables edge-resolution checks for modeled splices;
    ``node_ids`` enables parameter checks (isolate/node/group/src/dst
    must name cluster nodes); both default to the structural checks
    only.  Returns a sorted list of human-readable violations — empty
    means legal.
    """
    problems: List[str] = []
    by_id = {case.case_id: case for case in suite}
    used_ids = set(by_id)
    node_set = set(node_ids) if node_ids is not None else None

    chaos_count: Dict[int, int] = {}
    disruptive_count: Dict[int, int] = {}
    partition_count: Dict[int, int] = {}
    derived_seen: Dict[int, int] = {}

    for index, injection in enumerate(plan.injections):
        where = f"injection #{index} ({injection.kind})"
        if injection.mode is InjectionMode.MODELED:
            problems.extend(_modeled_violations(
                injection, where, by_id, used_ids, derived_seen, graph,
                max_faults_per_case))
            continue
        # -- chaos ------------------------------------------------------------
        try:
            kind = ChaosKind(injection.kind)
        except ValueError:
            problems.append(f"{where}: unknown chaos kind")
            continue
        case = by_id.get(injection.case_id)
        if case is None:
            problems.append(f"{where}: unknown case #{injection.case_id}")
            continue
        if len(case.steps) < 2:
            problems.append(f"{where}: case #{case.case_id} is too short "
                            f"for chaos ({len(case.steps)} steps)")
            continue
        top = (len(case.steps) if kind in DISRUPTIVE_KINDS
               else len(case.steps) - 1)
        if not 1 <= injection.step_index <= top:
            problems.append(
                f"{where}: step {injection.step_index} outside [1, {top}] "
                f"for case #{case.case_id}")
        chaos_count[case.case_id] = chaos_count.get(case.case_id, 0) + 1
        if kind in DISRUPTIVE_KINDS:
            disruptive_count[case.case_id] = (
                disruptive_count.get(case.case_id, 0) + 1)
        if kind in _PARTITION_FAMILY:
            partition_count[case.case_id] = (
                partition_count.get(case.case_id, 0) + 1)
        problems.extend(_param_violations(injection, kind, where, node_set))

    for case_id, count in sorted(disruptive_count.items()):
        if count > 1:
            problems.append(f"case #{case_id}: {count} disruptive "
                            f"injections (at most 1 per case)")
    for case_id, count in sorted(partition_count.items()):
        if count > 1:
            problems.append(f"case #{case_id}: {count} partition-family "
                            f"injections (at most 1 per case)")
    if max_faults_per_case is not None:
        for case_id, count in sorted(chaos_count.items()):
            allowed = max_faults_per_case
            if max_faults_per_case == 1 and disruptive_count.get(case_id):
                # the legacy k=1 shape: under --chaos the single
                # disruptive window rides on top of the base transparent
                # injection (keeps k=1 plans byte-identical to pre-k
                # plan files; at k>=2 the window consumes a k slot)
                allowed += 1
            if count > allowed:
                problems.append(
                    f"case #{case_id}: {count} chaos injections exceed "
                    f"the k-budget ({max_faults_per_case})")
    return problems


def _modeled_violations(injection: FaultInjection, where: str, by_id,
                        used_ids, derived_seen: Dict[int, int],
                        graph: Optional[StateGraph],
                        max_faults_per_case: Optional[int]) -> List[str]:
    problems: List[str] = []
    base = by_id.get(injection.case_id)
    if base is None:
        problems.append(f"{where}: unknown base case #{injection.case_id}")
        return problems
    if injection.edge is None:
        problems.append(f"{where}: modeled splice has no edge")
        return problems
    if not 0 <= injection.step_index <= len(base.steps):
        problems.append(f"{where}: splice position {injection.step_index} "
                        f"outside [0, {len(base.steps)}]")
        return problems
    # the spliced edge must leave the state the base path reaches at
    # the splice position
    source_ids = [step.src_id for step in base.steps] + [base.final_id]
    expected_src = source_ids[injection.step_index]
    if expected_src >= 0 and injection.edge.src != expected_src:
        problems.append(
            f"{where}: edge leaves s{injection.edge.src} but the base "
            f"path is at s{expected_src} at position {injection.step_index}")
    previous = injection.edge.dst
    for position, ref in enumerate(injection.tail):
        if ref.src != previous:
            problems.append(f"{where}: tail is not contiguous at "
                            f"position {position} (s{ref.src} after "
                            f"s{previous})")
            break
        previous = ref.dst
    if graph is not None:
        for ref in [injection.edge] + list(injection.tail):
            if graph.edge_between(ref.src, ref.dst, ref.label) is None:
                problems.append(f"{where}: edge s{ref.src} "
                                f"--{ref.label!r}--> s{ref.dst} is not in "
                                f"the graph")
    if injection.derived_case_id is None:
        problems.append(f"{where}: modeled splice has no derived case id")
    else:
        if injection.derived_case_id in used_ids:
            problems.append(f"{where}: derived case id "
                            f"#{injection.derived_case_id} collides with a "
                            f"suite case")
        seen = derived_seen.get(injection.derived_case_id, 0)
        if seen:
            problems.append(f"{where}: derived case id "
                            f"#{injection.derived_case_id} used twice")
        derived_seen[injection.derived_case_id] = seen + 1
    if graph is not None and max_faults_per_case is not None:
        fault_names = _fault_edge_names(injection, graph)
        if fault_names > max_faults_per_case:
            problems.append(f"{where}: {fault_names} fault edges exceed "
                            f"the k-budget ({max_faults_per_case})")
    return problems


def _fault_edge_names(injection: FaultInjection,
                      graph: StateGraph) -> int:
    """Count fault edges in the splice chain: the spliced edge plus any
    tail edge whose action also appears as a spliced/fault transition.

    Without a mapping we cannot name the fault actions; the spliced
    edge's action is definitionally one, so count tail edges sharing
    an action name with it (restart chains) — a conservative lower
    bound that matches how the planner builds chains.
    """
    fault_like = {injection.edge.label.name}
    return 1 + sum(1 for ref in injection.tail
                   if ref.label.name in fault_like)


def _param_violations(injection: FaultInjection, kind: ChaosKind,
                      where: str, node_set) -> List[str]:
    problems: List[str] = []
    params = injection.params
    for key in _REQUIRED_PARAMS[kind]:
        if key not in params:
            problems.append(f"{where}: missing parameter {key!r}")
            return problems
    count = params.get("count")
    if count is not None and (not isinstance(count, int) or count < 1):
        problems.append(f"{where}: count must be a positive int")
    heal_after = params.get("heal_after")
    if heal_after is not None and (not isinstance(heal_after, int)
                                   or heal_after < 1):
        problems.append(f"{where}: heal_after must be a positive int")
    if node_set is None:
        return problems
    for key in ("isolate", "node", "src", "dst"):
        value = params.get(key)
        if value is not None and value not in node_set:
            problems.append(f"{where}: {key}={value!r} is not a cluster "
                            f"node")
    group = params.get("group")
    if group is not None:
        unknown = [n for n in group if n not in node_set]
        if unknown:
            problems.append(f"{where}: group members {unknown!r} are not "
                            f"cluster nodes")
        if len(group) >= len(node_set):
            problems.append(f"{where}: group must leave at least one node "
                            f"outside the partition")
    if kind in (ChaosKind.LINK_CUT, ChaosKind.DELAY):
        if params.get("src") == params.get("dst") and len(node_set) > 1:
            problems.append(f"{where}: src and dst must differ")
    return problems
