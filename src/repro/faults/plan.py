"""Serialized fault plans (``mocket-fault-plan/1``).

A :class:`FaultPlan` is the nemesis analogue of a saved test suite: a
seeded, replayable description of *which* faults hit *which* case at
*which* step.  ``mocket faults plan`` writes one, ``mocket faults
replay`` re-applies it bit-identically, and ``mocket test --faults``
builds one in memory from ``--fault-seed``.

The JSON dump is canonical (sorted keys, fixed indentation), so the
same seed over the same graph + suite produces a **byte-identical**
file — the determinism guard in ``tests/faults`` relies on this.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..tlaplus.dot import decode_value, encode_value
from ..tlaplus.state import ActionLabel
from .kinds import ChaosKind, DISRUPTIVE_KINDS, InjectionMode

__all__ = ["PLAN_FORMAT", "EdgeRef", "FaultInjection", "FaultPlan"]

PLAN_FORMAT = "mocket-fault-plan/1"


class EdgeRef:
    """A graph edge named by endpoints + label, replayable from a plan."""

    __slots__ = ("src", "dst", "label")

    def __init__(self, src: int, dst: int, label: ActionLabel):
        self.src = src
        self.dst = dst
        self.label = label

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "action": self.label.name,
            "params": encode_value(self.label.params),
        }

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "EdgeRef":
        label = ActionLabel(payload["action"],
                            dict(decode_value(payload["params"])))
        return cls(payload["src"], payload["dst"], label)

    def __repr__(self) -> str:
        return f"EdgeRef({self.src} --{self.label!r}--> {self.dst})"


class FaultInjection:
    """One planned fault.

    For **modeled** injections ``kind`` is the spec fault's
    :class:`~repro.core.mapping.kinds.FaultKind` value and the injection
    describes a splice: take the base case's first ``step_index`` steps,
    then ``edge`` (the fault transition), then ``tail`` — the result is
    appended to the suite as case ``derived_case_id``.

    For **chaos** injections ``kind`` is a :class:`ChaosKind` value and
    the runner's nemesis applies it to case ``case_id`` just before
    executing step ``step_index`` (an index equal to the case length
    means "after the last step").
    """

    def __init__(self, mode: InjectionMode, kind: str, case_id: int,
                 step_index: int, params: Optional[Dict[str, Any]] = None,
                 derived_case_id: Optional[int] = None,
                 edge: Optional[EdgeRef] = None,
                 tail: Optional[Sequence[EdgeRef]] = None):
        self.mode = mode
        self.kind = kind
        self.case_id = case_id
        self.step_index = step_index
        self.params = dict(params or {})
        self.derived_case_id = derived_case_id
        self.edge = edge
        self.tail: List[EdgeRef] = list(tail or [])

    @property
    def disruptive(self) -> bool:
        return (self.mode is InjectionMode.CHAOS
                and ChaosKind(self.kind) in DISRUPTIVE_KINDS)

    def replace(self, *, params: Optional[Dict[str, Any]] = None,
                tail: Optional[Sequence[EdgeRef]] = None) -> "FaultInjection":
        """A copy with ``params`` and/or ``tail`` substituted — the
        shrinker uses this to try weakened variants of an injection."""
        return FaultInjection(
            self.mode, self.kind, self.case_id, self.step_index,
            params=self.params if params is None else params,
            derived_case_id=self.derived_case_id, edge=self.edge,
            tail=self.tail if tail is None else tail)

    def summary(self) -> str:
        """A one-line, timing-free description for reports and triage."""
        where = f"case #{self.case_id} step {self.step_index}"
        if self.mode is InjectionMode.MODELED:
            return (f"modeled {self.kind} {self.edge.label!r} spliced into "
                    f"{where} as case #{self.derived_case_id}")
        detail = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"chaos {self.kind}({detail}) before {where}"

    def to_jsonable(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "mode": self.mode.value,
            "kind": self.kind,
            "case_id": self.case_id,
            "step_index": self.step_index,
            "params": encode_value(self.params),
        }
        if self.mode is InjectionMode.MODELED:
            payload["derived_case_id"] = self.derived_case_id
            payload["edge"] = self.edge.to_jsonable()
            payload["tail"] = [ref.to_jsonable() for ref in self.tail]
        return payload

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "FaultInjection":
        mode = InjectionMode(payload["mode"])
        edge = tail = None
        if mode is InjectionMode.MODELED:
            edge = EdgeRef.from_jsonable(payload["edge"])
            tail = [EdgeRef.from_jsonable(ref) for ref in payload["tail"]]
        return cls(mode, payload["kind"], payload["case_id"],
                   payload["step_index"],
                   params=dict(decode_value(payload["params"])),
                   derived_case_id=payload.get("derived_case_id"),
                   edge=edge, tail=tail)

    def __repr__(self) -> str:
        return f"FaultInjection({self.summary()})"


class FaultPlan:
    """A seeded, serializable set of fault injections for one suite."""

    def __init__(self, seed: str, injections: Sequence[FaultInjection],
                 chaos: bool = False, target: str = ""):
        self.seed = str(seed)
        self.chaos = chaos
        self.target = target
        self.injections: List[FaultInjection] = list(injections)

    # -- queries ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.injections)

    def modeled(self) -> List[FaultInjection]:
        return [i for i in self.injections if i.mode is InjectionMode.MODELED]

    def chaos_for(self, case_id: int) -> List[FaultInjection]:
        """Chaos injections targeting ``case_id``, in step order."""
        hits = [i for i in self.injections
                if i.mode is InjectionMode.CHAOS and i.case_id == case_id]
        return sorted(hits, key=lambda i: i.step_index)

    def kinds(self) -> List[str]:
        """Distinct fault kinds this plan injects, sorted."""
        return sorted({i.kind for i in self.injections})

    def subset(self, injections: Sequence[FaultInjection]) -> "FaultPlan":
        """A plan carrying the same seed/chaos/target but only the
        given injections — a ddmin candidate is exactly this."""
        return FaultPlan(self.seed, injections, chaos=self.chaos,
                         target=self.target)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for injection in self.injections:
            counts[injection.kind] = counts.get(injection.kind, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> str:
        by_kind = ", ".join(f"{kind}={count}"
                            for kind, count in self.counts_by_kind().items())
        return (f"{len(self.injections)} injections "
                f"({by_kind or 'none'}; seed {self.seed!r}"
                f"{', chaos' if self.chaos else ''})")

    # -- persistence ----------------------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "format": PLAN_FORMAT,
            "seed": self.seed,
            "chaos": self.chaos,
            "target": self.target,
            "injections": [i.to_jsonable() for i in self.injections],
        }

    def to_json(self) -> str:
        """Canonical dump: same plan ⇒ byte-identical text."""
        return json.dumps(self.to_jsonable(), sort_keys=True, indent=2) + "\n"

    def save(self, path_or_file) -> None:
        if hasattr(path_or_file, "write"):
            path_or_file.write(self.to_json())
        else:
            with open(path_or_file, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if payload.get("format") != PLAN_FORMAT:
            raise ValueError(f"not a mocket fault plan: format "
                             f"{payload.get('format')!r}")
        injections = [FaultInjection.from_jsonable(raw)
                      for raw in payload["injections"]]
        return cls(payload["seed"], injections, chaos=payload["chaos"],
                   target=payload.get("target", ""))

    @classmethod
    def load(cls, path_or_file) -> "FaultPlan":
        if hasattr(path_or_file, "read"):
            payload = json.load(path_or_file)
        else:
            with open(path_or_file, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        return cls.from_jsonable(payload)

    def __repr__(self) -> str:
        return f"FaultPlan({self.summary()})"
