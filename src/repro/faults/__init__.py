"""``repro.faults`` — the fault-injection nemesis layer.

Turns the controlled-testing testbed from a replayer into an
adversarial harness: seeded :class:`FaultPlan` generation from the
verified state graph (:func:`plan_faults` / :func:`apply_plan`), a
runtime :class:`Nemesis` applying crash / restart / partition / reorder
faults, a :class:`FaultRunner` with bounded retry and convergence-mode
checking, and :func:`triage` to attribute the resulting divergences.
Failing plans shrink to a minimal repro with :func:`shrink_plan`
(delta debugging + parameter shrinking, fully deterministic), and
arbitrary plans — including fuzzer-mutated ones — are checkable against
the planner's k-budget rules with :func:`plan_violations`.
See docs/FAULTS.md.
"""

from .kinds import (
    ChaosKind,
    DISRUPTIVE_KINDS,
    InjectionMode,
    TRANSPARENT_KINDS,
)
from .legality import plan_is_legal, plan_violations
from .nemesis import Nemesis
from .plan import EdgeRef, FaultInjection, FaultPlan, PLAN_FORMAT
from .planner import apply_plan, plan_faults
from .runner import FaultConfig, FaultRunner
from .scenarios import (
    ChaosScenario,
    all_chaos_scenarios,
    minizk_crash_restart,
    pyxraft_crash_blackout,
    pyxraft_modeled_message_faults,
    pyxraft_partition_transparent,
    raftkv_bounce_leader,
)
from .shrink import ShrinkResult, shrink_plan
from .triage import divergence_id, render_triage, triage

__all__ = [
    "ChaosKind",
    "InjectionMode",
    "TRANSPARENT_KINDS",
    "DISRUPTIVE_KINDS",
    "PLAN_FORMAT",
    "EdgeRef",
    "FaultInjection",
    "FaultPlan",
    "plan_faults",
    "apply_plan",
    "plan_violations",
    "plan_is_legal",
    "Nemesis",
    "FaultConfig",
    "FaultRunner",
    "triage",
    "render_triage",
    "divergence_id",
    "ShrinkResult",
    "shrink_plan",
    "ChaosScenario",
    "all_chaos_scenarios",
    "raftkv_bounce_leader",
    "pyxraft_crash_blackout",
    "pyxraft_partition_transparent",
    "pyxraft_modeled_message_faults",
    "minizk_crash_restart",
]
