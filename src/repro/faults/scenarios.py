"""Bundled chaos scenarios: hand-placed injections with known outcomes.

Like the bug scenarios under ``repro.systems.*.scenarios``, every
schedule here is verified against the specification by
:func:`~repro.core.testgen.scenario_case`; only the *injections* are
outside the spec.  Each scenario pins down one corner of the nemesis
contract:

* ``raftkv_bounce_leader`` — bounce (crash + restart) the freshly
  elected leader after the schedule completes.  The volatile leader
  role is lost, so the case cannot re-converge to the final verified
  state: an ``inconsistent_state`` divergence that triage attributes to
  the bounce.
* ``pyxraft_crash_blackout`` — crash the vote-granting follower right
  before its handler action is scheduled.  The notification can never
  arrive; the bounded retry budget exhausts and the case reports
  ``stalled`` — attributed, never hanging.
* ``pyxraft_partition_transparent`` — partition the candidate away
  mid-election, forcing the runner down the heal-on-retry path; the
  case must still **pass**, because a partition only delays messages
  and per-step checking remains sound.
* ``pyxraft_modeled_message_faults`` — no chaos at all: the long-dormant
  ``DropMessage`` / ``DuplicateMessage`` spec actions are scheduled
  directly, so per-step checking stays exact and the case must pass.
* ``minizk_crash_restart`` — ZAB's modeled ``Crash``/``Restart`` fault
  actions scheduled directly against ``minizk``: a node dies, comes
  back with volatile election state wiped, and the cluster still
  elects a leader — every step, the faults included, is a verified
  spec transition, so the case must pass.
"""

from __future__ import annotations

from typing import Callable, List

from ..core.testgen import label, scenario_case
from ..specs.raft import RaftSpecOptions, build_raft_spec
from ..specs.zab import ZabSpecOptions, build_zab_spec
from .kinds import ChaosKind, InjectionMode
from .plan import FaultInjection, FaultPlan

__all__ = [
    "ChaosScenario",
    "raftkv_bounce_leader",
    "pyxraft_crash_blackout",
    "pyxraft_partition_transparent",
    "pyxraft_modeled_message_faults",
    "minizk_crash_restart",
    "all_chaos_scenarios",
]


def _rv_request(src, dst, term, llt=0, lli=0):
    return {"mtype": "RequestVoteRequest", "mterm": term, "mlastLogTerm": llt,
            "mlastLogIndex": lli, "msource": src, "mdest": dst}


def _rv_response(src, dst, term, granted):
    return {"mtype": "RequestVoteResponse", "mterm": term,
            "mvoteGranted": granted, "msource": src, "mdest": dst}


class ChaosScenario:
    """A named chaos scenario with its expected triage outcome."""

    def __init__(self, name: str, target: str, spec, graph, case,
                 plan: FaultPlan, servers, expected_kind: str,
                 expected_verdict: str):
        self.name = name
        self.target = target          # system kit: "raftkv" | "pyxraft" | "minizk"
        self.spec = spec
        self.graph = graph
        self.case = case
        self.plan = plan
        self.servers = servers
        self.expected_kind = expected_kind        # DivergenceKind value or "pass"
        self.expected_verdict = expected_verdict  # "fault-induced" | "pass"


def raftkv_bounce_leader() -> ChaosScenario:
    """Bounce the elected leader: volatile role lost, no re-convergence."""
    servers = ("n1", "n2", "n3")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=1, max_client_requests=0,
        enable_drop=False, enable_duplicate=False,
        candidates=("n1",), name="raftkv-chaos-bounce",
    ))
    schedule = [
        label("Timeout", i="n1"),
        label("RequestVote", i="n1", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
        label("HandleRequestVoteResponse", m=_rv_response("n2", "n1", 1, True)),
        label("BecomeLeader", i="n1"),
    ]
    graph, case = scenario_case(spec, schedule)
    plan = FaultPlan("scenario", [
        FaultInjection(InjectionMode.CHAOS, ChaosKind.BOUNCE.value,
                       case_id=case.case_id, step_index=len(schedule),
                       params={"node": "n1"}),
    ], chaos=True, target="raftkv")
    return ChaosScenario(
        "raftkv-chaos-bounce-leader", "raftkv", spec, graph, case, plan,
        servers, expected_kind="inconsistent_state",
        expected_verdict="fault-induced",
    )


def pyxraft_crash_blackout() -> ChaosScenario:
    """Crash the voter before its handler is scheduled: stalled, not hung."""
    servers = ("n1", "n2", "n3")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=1, max_client_requests=0,
        candidates=("n1",), name="xraft-chaos-crash",
    ))
    schedule = [
        label("Timeout", i="n1"),
        label("RequestVote", i="n1", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
    ]
    graph, case = scenario_case(spec, schedule)
    plan = FaultPlan("scenario", [
        FaultInjection(InjectionMode.CHAOS, ChaosKind.CRASH.value,
                       case_id=case.case_id, step_index=2,
                       params={"node": "n2"}),
    ], chaos=True, target="pyxraft")
    return ChaosScenario(
        "pyxraft-chaos-crash-blackout", "pyxraft", spec, graph, case, plan,
        servers, expected_kind="stalled", expected_verdict="fault-induced",
    )


def pyxraft_partition_transparent() -> ChaosScenario:
    """Partition the candidate mid-election: heal-on-retry, case passes."""
    servers = ("n1", "n2", "n3")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=1, max_client_requests=0,
        candidates=("n1",), name="xraft-chaos-partition",
    ))
    schedule = [
        label("Timeout", i="n1"),
        label("RequestVote", i="n1", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
        label("HandleRequestVoteResponse", m=_rv_response("n2", "n1", 1, True)),
        label("BecomeLeader", i="n1"),
    ]
    graph, case = scenario_case(spec, schedule)
    plan = FaultPlan("scenario", [
        FaultInjection(InjectionMode.CHAOS, ChaosKind.PARTITION.value,
                       case_id=case.case_id, step_index=1,
                       params={"isolate": "n1"}),
    ], chaos=False, target="pyxraft")
    return ChaosScenario(
        "pyxraft-chaos-partition-transparent", "pyxraft", spec, graph, case,
        plan, servers, expected_kind="pass", expected_verdict="pass",
    )


def pyxraft_modeled_message_faults() -> ChaosScenario:
    """Duplicate the vote request in flight, drop one copy, deliver the
    other.  Every step — including both message faults — is a verified
    spec transition (``RaftSpecOptions.fault_actions()`` lists them), so
    the case runs with exact per-step checking and must pass."""
    servers = ("n1", "n2", "n3")
    options = RaftSpecOptions(
        servers=servers, max_term=1, max_client_requests=0,
        enable_restart=False, max_drops=1, max_duplicates=1,
        candidates=("n1",), name="xraft-modeled-message-faults",
    )
    assert options.fault_actions() == ("DropMessage", "DuplicateMessage")
    spec = build_raft_spec(options)
    request = _rv_request("n1", "n2", 1)
    schedule = [
        label("Timeout", i="n1"),
        label("RequestVote", i="n1", j="n2"),
        label("DuplicateMessage", m=request),
        label("DropMessage", m=request),
        label("HandleRequestVoteRequest", m=request),
        label("HandleRequestVoteResponse", m=_rv_response("n2", "n1", 1, True)),
    ]
    graph, case = scenario_case(spec, schedule)
    plan = FaultPlan("scenario", [], chaos=False, target="pyxraft")
    return ChaosScenario(
        "pyxraft-modeled-message-faults", "pyxraft", spec, graph, case,
        plan, servers, expected_kind="pass", expected_verdict="pass",
    )


def minizk_crash_restart() -> ChaosScenario:
    """Crash ``n1``, restart it (volatile election state wiped, durable
    epochs kept), then run a full leader election that the rebooted
    node participates in.  ``Crash`` and ``Restart`` are ZAB spec fault
    actions (``ZabSpecOptions.fault_actions()`` lists them), so the
    whole case — faults included — runs with exact per-step checking
    and must pass: ``minizk``'s first *verified* fault case."""
    servers = ("n1", "n2", "n3")
    options = ZabSpecOptions(
        servers=servers, max_elections=1, max_crashes=1, max_restarts=1,
        starters=("n3",), crashers=("n1",), name="zab-crash-restart",
    )
    assert options.fault_actions() == ("Crash", "Restart")
    spec = build_zab_spec(options)

    def vote(src, dst):
        return {"mtype": "Vote", "mround": 1, "mvote": (0, "n3"),
                "msource": src, "mdest": dst}

    schedule = [
        label("Crash", i="n1"),
        label("Restart", i="n1"),
        label("StartElection", i="n3"),
        label("HandleVote", m=vote("n3", "n1")),
        label("HandleVote", m=vote("n1", "n3")),
        label("BecomeLeading", i="n3"),
    ]
    graph, case = scenario_case(spec, schedule)
    plan = FaultPlan("scenario", [], chaos=False, target="minizk")
    return ChaosScenario(
        "minizk-crash-restart", "minizk", spec, graph, case, plan,
        servers, expected_kind="pass", expected_verdict="pass",
    )


def all_chaos_scenarios() -> List[Callable[[], ChaosScenario]]:
    return [raftkv_bounce_leader, pyxraft_crash_blackout,
            pyxraft_partition_transparent, pyxraft_modeled_message_faults,
            minizk_crash_restart]
