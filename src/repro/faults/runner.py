"""Fault-aware controlled testing.

:class:`FaultRunner` extends the controlled tester with a nemesis.  It
executes the same schedules (modeled fault splices are ordinary test
cases by the time they reach it — the planner appended them to the
suite), applies the plan's chaos injections at their step boundaries,
and changes failure handling in two ways:

* **bounded retry/backoff** — when a scheduled action times out while
  chaos faults have been applied, the runner heals all partitions,
  backs off, and re-waits; an injected fault therefore cannot hang a
  case.  If the retry budget runs out the case is reported as
  ``stalled`` (the fourth divergence kind) instead of blocking.
* **convergence mode** — once a *disruptive* injection (bounce / crash)
  fires, per-step state equality is meaningless: the node was perturbed
  outside the verified state space.  The runner skips per-step
  comparison and instead demands, at end of case with every fault
  healed, that the implementation re-converge to the final verified
  state within a bounded window.

Per-case nemesis state is reset at case start inside ``_run_case``, so
the forked workers of :func:`repro.engine.run_suite_parallel` — which
inherit this runner and execute whole cases serially — stay
deterministic for any worker count.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..core.mapping.kinds import FaultKind, TriggerKind
from ..core.mapping.registry import SpecMapping
from ..core.testbed.report import Divergence, DivergenceKind, TestCaseResult
from ..core.testbed.runner import ControlledTester, RunnerConfig
from ..core.testgen.testcase import TestCase, TestStep
from ..runtime.clock import Clock, WALL_CLOCK
from ..runtime.cluster import Cluster
from ..tlaplus.graph import StateGraph
from .nemesis import Nemesis
from .plan import FaultInjection, FaultPlan

__all__ = ["FaultConfig", "FaultRunner"]


class FaultConfig:
    """Retry/backoff budget for fault-perturbed cases."""

    def __init__(self, retries: int = 2, backoff: float = 0.25,
                 convergence_timeout: float = 2.0, poll: float = 0.1,
                 jitter: float = 0.0, clock: Optional[Clock] = None):
        self.retries = retries                        # re-waits after heal
        self.backoff = backoff                        # seconds, linear per attempt
        self.convergence_timeout = convergence_timeout
        self.poll = poll                              # convergence re-check period
        # all backoff and convergence waits go through this clock; a
        # :class:`~repro.runtime.sim.VirtualClock` turns them into
        # simulated-time advances so replays pay no real backoff time
        self.clock = clock if clock is not None else WALL_CLOCK
        # optional extra sleep, up to ``jitter`` seconds per retry.  The
        # amount is drawn from a plan-seeded per-case stream (never the
        # process-global ``random``), so ``faults replay`` and the
        # shrinker see bit-identical behaviour run over run.
        self.jitter = jitter


class FaultRunner(ControlledTester):
    """A controlled tester that executes a :class:`FaultPlan`."""

    def __init__(self, mapping: SpecMapping, graph: StateGraph,
                 cluster_factory: Callable[[], Cluster], plan: FaultPlan,
                 config: Optional[RunnerConfig] = None,
                 fault_config: Optional[FaultConfig] = None):
        super().__init__(mapping, graph, cluster_factory, config)
        self.plan = plan
        self.faults = fault_config or FaultConfig()
        # per-case nemesis state; reset at the top of _run_case
        self._nemesis: Optional[Nemesis] = None
        self._pending: List[FaultInjection] = []
        self._case_rng: Optional[random.Random] = None
        # backoff jitter draws come from their own stream: the nemesis
        # stream must consume the same sequence regardless of how many
        # retries happened, or reorder/corrupt picks would drift
        self._backoff_rng: Optional[random.Random] = None
        self._convergence = False
        self._heal_at: List[int] = []

    # -- case lifecycle ------------------------------------------------------
    def _run_case(self, case: TestCase) -> TestCaseResult:
        self._pending = self.plan.chaos_for(case.case_id)
        self._case_rng = random.Random(
            f"{self.plan.seed}:{case.case_id}:nemesis")
        self._backoff_rng = random.Random(
            f"{self.plan.seed}:{case.case_id}:backoff")
        self._nemesis = None
        self._convergence = False
        self._heal_at = []
        result = super()._run_case(case)
        modeled = [injection.summary() for injection in self.plan.modeled()
                   if injection.derived_case_id == case.case_id]
        applied = list(self._nemesis.applied) if self._nemesis else []
        result.injected_faults = modeled + applied
        return result

    # -- step execution ------------------------------------------------------
    def _execute_step(self, index, step, runtime, cluster, checker,
                      occurrences, request_threads):
        self._apply_due(index, runtime, cluster)
        divergence = super()._execute_step(index, step, runtime, cluster,
                                           checker, occurrences,
                                           request_threads)
        if divergence is None:
            return None
        # A held message can surface as either timeout classification:
        # missing (nothing pending) or unexpected (a same-name
        # notification for a different message is pending).  Both are
        # worth a heal + re-wait once the nemesis has acted.
        retriable = {DivergenceKind.MISSING_ACTION,
                     DivergenceKind.UNEXPECTED_ACTION}
        if (self._nemesis is None or not self._nemesis.applied
                or divergence.kind not in retriable):
            return divergence
        return self._retry_step(index, step, runtime, cluster, checker,
                                divergence)

    def _retry_step(self, index: int, step: TestStep, runtime, cluster,
                    checker, divergence: Divergence) -> Optional[Divergence]:
        """Heal, back off, re-wait — never re-running client scripts or
        crash/restart/duplicate effects, which already happened."""
        action = self.mapping.action_mapping(step.label.name)
        if (action.trigger is TriggerKind.FAULT
                and action.fault_kind is not FaultKind.DROP_MESSAGE):
            return divergence  # only the drop switch involves a wait
        last = divergence
        for attempt in range(1, self.faults.retries + 1):
            self._nemesis.heal_all()
            pause = self.faults.backoff * attempt
            if self.faults.jitter:
                pause += self._backoff_rng.random() * self.faults.jitter
            self.faults.clock.sleep(pause)
            if action.trigger is TriggerKind.FAULT:
                retried = self._run_fault(index, step, runtime, cluster,
                                          action)
            else:
                retried = self._run_spontaneous(index, step, runtime)
            if retried is None:
                return self._check_expected(index, step, checker)
            last = retried
        if last.kind is DivergenceKind.UNEXPECTED_ACTION:
            # the offending notification survived every heal: a genuine
            # unexpected action, not a delayed delivery
            return last
        return Divergence(
            DivergenceKind.STALLED, index, action=step.label.name,
            pending=last.pending,
            detail=(f"no progress after {self.faults.retries} retries with "
                    f"all faults healed; injected: "
                    f"{'; '.join(self._nemesis.applied)}"),
        )

    # -- checking ------------------------------------------------------------
    def _check_expected(self, index, step, checker):
        if self._convergence:
            return None  # disruptive chaos: deferred to convergence check
        return super()._check_expected(index, step, checker)

    def _end_of_case_check(self, case, runtime, checker):
        # injections placed "after the last step" fire here
        self._apply_due(len(case.steps), runtime, runtime.cluster)
        if self._nemesis is not None:
            self._nemesis.heal_all()
        if self._convergence:
            return self._check_convergence(case, checker)
        return super()._end_of_case_check(case, runtime, checker)

    def _check_convergence(self, case: TestCase,
                           checker) -> Optional[Divergence]:
        """Poll until the runtime state equals the final verified state,
        or the convergence window closes."""
        mismatches = checker.converged(case.final_state,
                                       self.faults.convergence_timeout,
                                       poll=self.faults.poll,
                                       clock=self.faults.clock)
        if not mismatches:
            return None
        return Divergence(
            DivergenceKind.INCONSISTENT_STATE, len(case.steps),
            variables=mismatches,
            detail=(f"no re-convergence to final verified state "
                    f"s{case.final_id} within "
                    f"{self.faults.convergence_timeout}s; injected: "
                    f"{'; '.join(self._nemesis.applied)}"),
        )

    # -- nemesis plumbing ----------------------------------------------------
    def _apply_due(self, index: int, runtime, cluster) -> None:
        # scheduled heals fire first: an injection planned with a
        # ``heal_after`` window releases *everything* currently held
        # (heal is global), then this boundary's injections apply
        if self._heal_at and self._nemesis is not None and any(
                at <= index for at in self._heal_at):
            self._heal_at = [at for at in self._heal_at if at > index]
            self._nemesis.heal_all()
        while self._pending and self._pending[0].step_index <= index:
            injection = self._pending.pop(0)
            if self._nemesis is None:
                self._nemesis = Nemesis(cluster, runtime, self._case_rng,
                                        injection.case_id)
            self._nemesis.apply(injection)
            heal_after = injection.params.get("heal_after")
            if heal_after is not None:
                self._heal_at.append(injection.step_index + int(heal_after))
            if injection.disruptive:
                self._convergence = True
