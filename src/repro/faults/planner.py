"""Deriving fault plans from the verified state graph.

``plan_faults`` is pure and seeded: the same ``(graph, suite, mapping,
seed)`` always yields the same plan, byte-identical once serialized.
It runs in the master process *before* cases are dispatched to workers,
so ``--workers N`` cannot perturb planning.

Two families of injection points:

* **modeled** — wherever a test-case path visits a state with an
  outgoing fault-action edge (``Restart``, ``DropMessage``,
  ``DuplicateMessage``), the planner may splice that edge in: prefix of
  the base case, then the fault edge, then a short verified tail.  The
  derived case is appended to the suite with a fresh id; because it is
  still a path of the state graph, per-step checking stays sound.
  Kinds are chosen round-robin (least-used first) so coverage spreads
  across every fault action the spec offers.
* **chaos** — spec-unmodeled nemesis operations placed by seeded dice:
  every eligible base case gets one *transparent* injection
  (partition / reorder, alternating), and with ``chaos=True`` every
  other case additionally gets a *disruptive* one (bounce / crash,
  alternating), which switches that case to convergence-mode checking.

With ``max_faults_per_case=k`` (k > 1) the planner composes schedules:
modeled splices may chain several fault edges inside one derived case,
and each chaos-eligible case fills its ``k``-injection budget — the
base transparent injection, one disruptive window (under ``chaos``,
alternating bounce/crash on even cases and corruption on odd ones),
and extra transparent injections from the wider vocabulary (one-way
link cuts, per-link delays, partial partitions, reorders) — subject to
the legality rules:

* at most one partition-family injection per case (a second
  partition/partial-partition would overwrite the first's groups),
* at most one *disruptive* injection per case — disruptive windows
  must not overlap, because convergence-mode checking needs a single
  perturbation to converge from,
* link cuts, delays and reorders stack freely.

``k == 1`` consumes the seeded dice exactly as earlier releases did, so
existing plans stay byte-identical.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.mapping.kinds import TriggerKind
from ..core.mapping.registry import SpecMapping
from ..core.testgen.testcase import TestCase, TestSuite
from ..tlaplus.graph import Edge, StateGraph
from .kinds import ChaosKind, InjectionMode
from .plan import EdgeRef, FaultInjection, FaultPlan

__all__ = ["plan_faults", "apply_plan"]

_BENIGN_CYCLE = (ChaosKind.PARTITION, ChaosKind.REORDER)
_DISRUPTIVE_CYCLE = (ChaosKind.BOUNCE, ChaosKind.CRASH)
# the wider vocabulary, reachable only via max_faults_per_case > 1 so
# existing single-fault plans stay byte-identical
_EXTRA_CYCLE = (ChaosKind.LINK_CUT, ChaosKind.DELAY,
                ChaosKind.PARTIAL_PARTITION, ChaosKind.REORDER)
_PARTITION_FAMILY = frozenset({ChaosKind.PARTITION,
                               ChaosKind.PARTIAL_PARTITION})


def _case_rng(seed: str, case_id: int, salt: str = "") -> random.Random:
    # string seeds hash via sha512 inside random.Random: stable across
    # processes and independent of PYTHONHASHSEED
    return random.Random(f"{seed}:{case_id}:{salt}")


def plan_faults(
    graph: StateGraph,
    suite: TestSuite,
    mapping: SpecMapping,
    seed: str,
    node_ids: Sequence[str],
    chaos: bool = False,
    tail_length: int = 2,
    max_modeled: Optional[int] = None,
    target: str = "",
    max_faults_per_case: int = 1,
) -> FaultPlan:
    """Build a deterministic :class:`FaultPlan` for ``suite``."""
    if max_faults_per_case < 1:
        raise ValueError(f"max_faults_per_case must be >= 1, "
                         f"got {max_faults_per_case}")
    seed = str(seed)
    fault_names = {name for name, action in mapping.actions.items()
                   if action.trigger is TriggerKind.FAULT}
    injections: List[FaultInjection] = []
    kind_use: Dict[str, int] = {}
    next_id = max((case.case_id for case in suite), default=-1) + 1

    # -- modeled splices -----------------------------------------------------
    for case in suite:
        if max_modeled is not None and len(injections) >= max_modeled:
            break
        chosen = _choose_modeled(graph, case, mapping, fault_names,
                                 kind_use, _case_rng(seed, case.case_id))
        if chosen is None:
            continue
        position, edge, kind = chosen
        kind_use[kind] = kind_use.get(kind, 0) + 1
        tail = _choose_tail(graph, edge.dst, fault_names, tail_length,
                            _case_rng(seed, case.case_id, "tail"))
        # with a multi-fault budget, chain further verified fault edges
        # (each with its own short tail) into the same derived case —
        # the whole chain is still a path of the graph, so per-step
        # checking stays exact
        for chain in range(2, max_faults_per_case + 1):
            end = tail[-1].dst if tail else edge.dst
            rng = _case_rng(seed, case.case_id, f"chain{chain}")
            options = [e for e in graph.out_edges(end)
                       if e.label.name in fault_names]
            if not options:
                break
            extra = options[rng.randrange(len(options))]
            extra_kind = mapping.actions[extra.label.name].fault_kind.value
            kind_use[extra_kind] = kind_use.get(extra_kind, 0) + 1
            tail.append(extra)
            tail.extend(_choose_tail(
                graph, extra.dst, fault_names, tail_length,
                _case_rng(seed, case.case_id, f"tail{chain}")))
        injections.append(FaultInjection(
            InjectionMode.MODELED, kind, case.case_id, position,
            derived_case_id=next_id,
            edge=EdgeRef(edge.src, edge.dst, edge.label),
            tail=[EdgeRef(e.src, e.dst, e.label) for e in tail],
        ))
        next_id += 1

    # -- chaos dice ----------------------------------------------------------
    for index, case in enumerate(suite):
        if len(case.steps) < 2:
            continue
        rng = _case_rng(seed, case.case_id, "chaos")
        kind = _BENIGN_CYCLE[index % len(_BENIGN_CYCLE)]
        node = node_ids[rng.randrange(len(node_ids))]
        step = rng.randrange(1, len(case.steps))
        params = ({"isolate": node} if kind is ChaosKind.PARTITION
                  else {"node": node})
        injections.append(FaultInjection(
            InjectionMode.CHAOS, kind.value, case.case_id, step,
            params=params))
        if chaos and index % 2 == 0:
            disruptive = _DISRUPTIVE_CYCLE[(index // 2) % len(_DISRUPTIVE_CYCLE)]
            node = node_ids[rng.randrange(len(node_ids))]
            # an index equal to the case length means "after the last step"
            step = rng.randrange(1, len(case.steps) + 1)
            injections.append(FaultInjection(
                InjectionMode.CHAOS, disruptive.value, case.case_id, step,
                params={"node": node}))
        if max_faults_per_case > 1:
            injections.extend(_extra_chaos(
                case, index, kind, node_ids, chaos, max_faults_per_case,
                _case_rng(seed, case.case_id, "chaos+")))

    return FaultPlan(seed, injections, chaos=chaos, target=target)


def _extra_chaos(case: TestCase, index: int, base_kind: ChaosKind,
                 node_ids: Sequence[str], chaos: bool, budget: int,
                 rng: random.Random) -> List[FaultInjection]:
    """Extra per-case injections from the wide vocabulary (k > 1 only).

    Walks ``_EXTRA_CYCLE`` from a per-case offset so coverage spreads,
    skipping kinds the legality rules forbid.  With ``chaos=True``,
    odd-index cases (which the base dice leave non-disruptive) trade
    their last slot for a CORRUPT injection — keeping the invariant of
    at most one disruptive injection per case.
    """
    extras: List[FaultInjection] = []
    partition_used = base_kind in _PARTITION_FAMILY
    slots = budget - 1
    if chaos:
        # even-index cases already carry the base disruptive injection;
        # odd-index cases reserve the slot for the corrupt below — either
        # way one slot of the k-budget is spent on a disruptive window
        slots -= 1
    for slot in range(slots):
        kind = None
        for offset in range(len(_EXTRA_CYCLE)):
            candidate = _EXTRA_CYCLE[(index + slot + offset)
                                     % len(_EXTRA_CYCLE)]
            if candidate in _PARTITION_FAMILY and partition_used:
                continue
            if candidate is not ChaosKind.REORDER and len(node_ids) < 2:
                continue  # link/partition kinds need a second node
            kind = candidate
            break
        if kind is None:  # pragma: no cover - cycle always has legal kinds
            break
        step = rng.randrange(1, len(case.steps))
        params = _extra_params(kind, node_ids, rng)
        if kind in _PARTITION_FAMILY:
            partition_used = True
        extras.append(FaultInjection(
            InjectionMode.CHAOS, kind.value, case.case_id, step,
            params=params))
    if chaos and index % 2 == 1:
        node = node_ids[rng.randrange(len(node_ids))]
        step = rng.randrange(1, len(case.steps) + 1)
        extras.append(FaultInjection(
            InjectionMode.CHAOS, ChaosKind.CORRUPT.value, case.case_id,
            step, params={"node": node}))
    return extras


def _extra_params(kind: ChaosKind, node_ids: Sequence[str],
                  rng: random.Random) -> Dict[str, object]:
    """Seeded parameters for one wide-vocabulary injection."""
    if kind is ChaosKind.REORDER:
        return {"node": node_ids[rng.randrange(len(node_ids))]}
    if kind is ChaosKind.PARTIAL_PARTITION:
        size = rng.randrange(1, len(node_ids)) if len(node_ids) > 1 else 1
        group = sorted(rng.sample(list(node_ids), size))
        return {"group": group, "heal_after": rng.randrange(1, 3)}
    # directed-link kinds: pick an ordered pair of distinct nodes
    src = node_ids[rng.randrange(len(node_ids))]
    others = [n for n in node_ids if n != src] or [src]
    dst = others[rng.randrange(len(others))]
    if kind is ChaosKind.DELAY:
        return {"src": src, "dst": dst, "count": rng.randrange(1, 4)}
    return {"src": src, "dst": dst, "heal_after": rng.randrange(1, 3)}


def _choose_modeled(graph: StateGraph, case: TestCase, mapping: SpecMapping,
                    fault_names, kind_use: Dict[str, int],
                    rng: random.Random) -> Optional[Tuple[int, Edge, str]]:
    """Pick one (position, fault edge, kind) splice point for ``case``."""
    source_ids = [step.src_id for step in case.steps] + [case.final_id]
    if any(sid < 0 for sid in source_ids):
        return None  # suite lacks graph provenance (hand-built steps)
    by_kind: Dict[str, List[Tuple[int, Edge]]] = {}
    for position, sid in enumerate(source_ids):
        for edge in graph.out_edges(sid):
            if edge.label.name not in fault_names:
                continue
            kind = mapping.actions[edge.label.name].fault_kind.value
            by_kind.setdefault(kind, []).append((position, edge))
    if not by_kind:
        return None
    # least-used kind first, name as the deterministic tie-break
    kind = min(by_kind, key=lambda k: (kind_use.get(k, 0), k))
    position, edge = by_kind[kind][rng.randrange(len(by_kind[kind]))]
    return position, edge, kind


def _choose_tail(graph: StateGraph, start: int, fault_names, length: int,
                 rng: random.Random) -> List[Edge]:
    """A short verified continuation after the spliced fault edge,
    preferring non-fault transitions."""
    tail: List[Edge] = []
    current = start
    for _ in range(length):
        outgoing = graph.out_edges(current)
        pool = [e for e in outgoing if e.label.name not in fault_names] or outgoing
        if not pool:
            break
        edge = pool[rng.randrange(len(pool))]
        tail.append(edge)
        current = edge.dst
    return tail


def apply_plan(suite: TestSuite, graph: StateGraph,
               plan: FaultPlan) -> TestSuite:
    """Materialize the plan's modeled splices as appended derived cases.

    Chaos injections need no suite change — the fault runner's nemesis
    applies them at runtime.  Raises :class:`ValueError` when the plan
    references cases or edges the suite/graph does not have (a plan
    replayed against the wrong artifacts).
    """
    cases = list(suite)
    by_id = {case.case_id: case for case in cases}
    for injection in plan.modeled():
        base = by_id.get(injection.case_id)
        if base is None:
            raise ValueError(f"plan references unknown case "
                             f"#{injection.case_id}")
        path: List[Edge] = []
        for step in base.steps[:injection.step_index]:
            path.append(_resolve_edge(graph, step.src_id, step.dst_id,
                                      step.label))
        ref = injection.edge
        path.append(_resolve_edge(graph, ref.src, ref.dst, ref.label))
        for ref in injection.tail:
            path.append(_resolve_edge(graph, ref.src, ref.dst, ref.label))
        cases.append(TestCase.from_edges(injection.derived_case_id, graph,
                                         path))
    return TestSuite(cases, graph=suite.graph,
                     excluded_edges=suite.excluded_edges,
                     uncovered_edges=suite.uncovered_edges)


def _resolve_edge(graph: StateGraph, src: int, dst: int, label) -> Edge:
    edge = graph.edge_between(src, dst, label)
    if edge is None:
        raise ValueError(f"plan references edge {src} --{label!r}--> {dst} "
                         f"not present in the graph")
    return edge
