"""Deriving fault plans from the verified state graph.

``plan_faults`` is pure and seeded: the same ``(graph, suite, mapping,
seed)`` always yields the same plan, byte-identical once serialized.
It runs in the master process *before* cases are dispatched to workers,
so ``--workers N`` cannot perturb planning.

Two families of injection points:

* **modeled** — wherever a test-case path visits a state with an
  outgoing fault-action edge (``Restart``, ``DropMessage``,
  ``DuplicateMessage``), the planner may splice that edge in: prefix of
  the base case, then the fault edge, then a short verified tail.  The
  derived case is appended to the suite with a fresh id; because it is
  still a path of the state graph, per-step checking stays sound.
  Kinds are chosen round-robin (least-used first) so coverage spreads
  across every fault action the spec offers.
* **chaos** — spec-unmodeled nemesis operations placed by seeded dice:
  every eligible base case gets one *transparent* injection
  (partition / reorder, alternating), and with ``chaos=True`` every
  other case additionally gets a *disruptive* one (bounce / crash,
  alternating), which switches that case to convergence-mode checking.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.mapping.kinds import TriggerKind
from ..core.mapping.registry import SpecMapping
from ..core.testgen.testcase import TestCase, TestSuite
from ..tlaplus.graph import Edge, StateGraph
from .kinds import ChaosKind, InjectionMode
from .plan import EdgeRef, FaultInjection, FaultPlan

__all__ = ["plan_faults", "apply_plan"]

_BENIGN_CYCLE = (ChaosKind.PARTITION, ChaosKind.REORDER)
_DISRUPTIVE_CYCLE = (ChaosKind.BOUNCE, ChaosKind.CRASH)


def _case_rng(seed: str, case_id: int, salt: str = "") -> random.Random:
    # string seeds hash via sha512 inside random.Random: stable across
    # processes and independent of PYTHONHASHSEED
    return random.Random(f"{seed}:{case_id}:{salt}")


def plan_faults(
    graph: StateGraph,
    suite: TestSuite,
    mapping: SpecMapping,
    seed: str,
    node_ids: Sequence[str],
    chaos: bool = False,
    tail_length: int = 2,
    max_modeled: Optional[int] = None,
    target: str = "",
) -> FaultPlan:
    """Build a deterministic :class:`FaultPlan` for ``suite``."""
    seed = str(seed)
    fault_names = {name for name, action in mapping.actions.items()
                   if action.trigger is TriggerKind.FAULT}
    injections: List[FaultInjection] = []
    kind_use: Dict[str, int] = {}
    next_id = max((case.case_id for case in suite), default=-1) + 1

    # -- modeled splices -----------------------------------------------------
    for case in suite:
        if max_modeled is not None and len(injections) >= max_modeled:
            break
        chosen = _choose_modeled(graph, case, mapping, fault_names,
                                 kind_use, _case_rng(seed, case.case_id))
        if chosen is None:
            continue
        position, edge, kind = chosen
        kind_use[kind] = kind_use.get(kind, 0) + 1
        tail = _choose_tail(graph, edge.dst, fault_names, tail_length,
                            _case_rng(seed, case.case_id, "tail"))
        injections.append(FaultInjection(
            InjectionMode.MODELED, kind, case.case_id, position,
            derived_case_id=next_id,
            edge=EdgeRef(edge.src, edge.dst, edge.label),
            tail=[EdgeRef(e.src, e.dst, e.label) for e in tail],
        ))
        next_id += 1

    # -- chaos dice ----------------------------------------------------------
    for index, case in enumerate(suite):
        if len(case.steps) < 2:
            continue
        rng = _case_rng(seed, case.case_id, "chaos")
        kind = _BENIGN_CYCLE[index % len(_BENIGN_CYCLE)]
        node = node_ids[rng.randrange(len(node_ids))]
        step = rng.randrange(1, len(case.steps))
        params = ({"isolate": node} if kind is ChaosKind.PARTITION
                  else {"node": node})
        injections.append(FaultInjection(
            InjectionMode.CHAOS, kind.value, case.case_id, step,
            params=params))
        if chaos and index % 2 == 0:
            disruptive = _DISRUPTIVE_CYCLE[(index // 2) % len(_DISRUPTIVE_CYCLE)]
            node = node_ids[rng.randrange(len(node_ids))]
            # an index equal to the case length means "after the last step"
            step = rng.randrange(1, len(case.steps) + 1)
            injections.append(FaultInjection(
                InjectionMode.CHAOS, disruptive.value, case.case_id, step,
                params={"node": node}))

    return FaultPlan(seed, injections, chaos=chaos, target=target)


def _choose_modeled(graph: StateGraph, case: TestCase, mapping: SpecMapping,
                    fault_names, kind_use: Dict[str, int],
                    rng: random.Random) -> Optional[Tuple[int, Edge, str]]:
    """Pick one (position, fault edge, kind) splice point for ``case``."""
    source_ids = [step.src_id for step in case.steps] + [case.final_id]
    if any(sid < 0 for sid in source_ids):
        return None  # suite lacks graph provenance (hand-built steps)
    by_kind: Dict[str, List[Tuple[int, Edge]]] = {}
    for position, sid in enumerate(source_ids):
        for edge in graph.out_edges(sid):
            if edge.label.name not in fault_names:
                continue
            kind = mapping.actions[edge.label.name].fault_kind.value
            by_kind.setdefault(kind, []).append((position, edge))
    if not by_kind:
        return None
    # least-used kind first, name as the deterministic tie-break
    kind = min(by_kind, key=lambda k: (kind_use.get(k, 0), k))
    position, edge = by_kind[kind][rng.randrange(len(by_kind[kind]))]
    return position, edge, kind


def _choose_tail(graph: StateGraph, start: int, fault_names, length: int,
                 rng: random.Random) -> List[Edge]:
    """A short verified continuation after the spliced fault edge,
    preferring non-fault transitions."""
    tail: List[Edge] = []
    current = start
    for _ in range(length):
        outgoing = graph.out_edges(current)
        pool = [e for e in outgoing if e.label.name not in fault_names] or outgoing
        if not pool:
            break
        edge = pool[rng.randrange(len(pool))]
        tail.append(edge)
        current = edge.dst
    return tail


def apply_plan(suite: TestSuite, graph: StateGraph,
               plan: FaultPlan) -> TestSuite:
    """Materialize the plan's modeled splices as appended derived cases.

    Chaos injections need no suite change — the fault runner's nemesis
    applies them at runtime.  Raises :class:`ValueError` when the plan
    references cases or edges the suite/graph does not have (a plan
    replayed against the wrong artifacts).
    """
    cases = list(suite)
    by_id = {case.case_id: case for case in cases}
    for injection in plan.modeled():
        base = by_id.get(injection.case_id)
        if base is None:
            raise ValueError(f"plan references unknown case "
                             f"#{injection.case_id}")
        path: List[Edge] = []
        for step in base.steps[:injection.step_index]:
            path.append(_resolve_edge(graph, step.src_id, step.dst_id,
                                      step.label))
        ref = injection.edge
        path.append(_resolve_edge(graph, ref.src, ref.dst, ref.label))
        for ref in injection.tail:
            path.append(_resolve_edge(graph, ref.src, ref.dst, ref.label))
        cases.append(TestCase.from_edges(injection.derived_case_id, graph,
                                         path))
    return TestSuite(cases, graph=suite.graph,
                     excluded_edges=suite.excluded_edges,
                     uncovered_edges=suite.uncovered_edges)


def _resolve_edge(graph: StateGraph, src: int, dst: int, label) -> Edge:
    edge = graph.edge_between(src, dst, label)
    if edge is None:
        raise ValueError(f"plan references edge {src} --{label!r}--> {dst} "
                         f"not present in the graph")
    return edge
