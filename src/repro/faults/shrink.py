"""Shrinking a failing fault plan to a minimal repro.

When a long chaos run fails, the user is handed a plan with dozens of
injections and no idea which ones mattered.  :func:`shrink_plan` is the
Jepsen/QuickCheck answer: replay candidate sub-plans through the very
same :class:`~repro.faults.runner.FaultRunner` (seeded retry/backoff
included, so every replay is bit-deterministic) and keep only what is
needed to reproduce the failure.

"Still failing" reuses :func:`~repro.faults.triage.triage` attribution:
a candidate reproduces iff it yields an **unattributed** divergence of
one of the kinds the original plan produced.  Attributed divergences
are the faults working as intended; unattributed ones are the
potential real bugs a minimal repro is worth having for.

The pipeline, in replay-budget order:

1. **scope** — drop every injection aimed at cases that did not fail
   unattributed, and shrink the replayed suite to just the failing
   cases (cases are hermetic: each gets a fresh cluster, so per-case
   replay is sound).  One replay validates the scoped plan still
   fails; if it somehow does not, the shrinker falls back to the full
   artifacts.
2. **independence probe** — replay with *zero* injections.  Because
   triage attributes every divergence at or after an injection to that
   injection, an unattributed failure is very often fault-independent;
   when the empty plan still fails, that proof ("your failure needs no
   faults — here is the bare failing case") *is* the minimal repro and
   the remaining phases are skipped.
3. **ddmin** — classic delta debugging over the injection list:
   try subsets and complements at doubling granularity, keeping any
   candidate that still fails.
4. **parameter shrinking** — for each surviving injection try weaker
   variants one dimension at a time: shorter modeled tails, smaller
   delay counts, smaller partial-partition groups, earlier heals.

Every replay is logged as a TraceEvent-shaped record (``shrink.*``
names), so the JSONL shrink log is directly consumable by
``mocket trace summarize``.  The log is timing-free (``ts`` is the
record index), hence byte-identical run over run — the determinism
guard in ``tests/faults`` relies on this.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.mapping.registry import SpecMapping
from ..core.testbed.runner import RunnerConfig
from ..core.testgen.testcase import TestSuite
from ..obs import TRACER
from ..runtime.cluster import Cluster
from ..tlaplus.graph import StateGraph
from .plan import FaultInjection, FaultPlan
from .planner import apply_plan
from .runner import FaultConfig, FaultRunner
from .triage import triage

__all__ = ["ShrinkResult", "shrink_plan"]


class ShrinkResult:
    """Outcome of one shrink run."""

    def __init__(self, minimal: FaultPlan, initial_count: int,
                 replays: int, signature: List[str],
                 fault_independent: bool, converged: bool,
                 log: List[Dict[str, object]]):
        self.minimal = minimal
        self.initial_count = initial_count
        self.final_count = len(minimal.injections)
        self.replays = replays
        self.signature = signature
        self.fault_independent = fault_independent
        # False when the replay budget ran out before reaching a
        # 1-minimal plan; the result is still the best plan seen
        self.converged = converged
        self.log = log

    def summary(self) -> str:
        tag = " (failure is fault-independent)" if self.fault_independent else ""
        status = "" if self.converged else " [budget exhausted]"
        return (f"shrunk {self.initial_count} -> {self.final_count} "
                f"injections in {self.replays} replays"
                f"{status}; reproduces: {', '.join(self.signature)}{tag}")

    def write_log(self, path_or_file) -> None:
        """Write the shrink log as JSONL (TraceEvent-shaped records)."""
        import json

        def dump(handle):
            for record in self.log:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

        if hasattr(path_or_file, "write"):
            dump(path_or_file)
        else:
            with open(path_or_file, "w", encoding="utf-8") as handle:
                dump(handle)


class _Session:
    """Shared state of one shrink run: replay counter, budget, log."""

    def __init__(self, budget: int):
        self.budget = budget
        self.replays = 0
        self.log: List[Dict[str, object]] = []

    @property
    def exhausted(self) -> bool:
        return self.replays >= self.budget

    def record(self, name: str, **fields) -> None:
        self.log.append({
            "seq": len(self.log),
            "ts": float(len(self.log)),  # timing-free: replayable bytes
            "kind": "shrink",
            "name": name,
            "fields": fields,
        })
        if TRACER.enabled:
            TRACER.emit(name, **fields)


def shrink_plan(
    plan: FaultPlan,
    graph: StateGraph,
    suite: TestSuite,
    mapping: SpecMapping,
    cluster_factory: Callable[[], Cluster],
    runner_config: Optional[RunnerConfig] = None,
    fault_config: Optional[FaultConfig] = None,
    budget: int = 200,
    workers: int = 1,
) -> ShrinkResult:
    """Minimize ``plan`` to the smallest sub-plan that still fails.

    Raises :class:`ValueError` when the plan does not fail (no
    unattributed divergence) — there is nothing to shrink.  ``budget``
    bounds the number of replays; on exhaustion the best plan found so
    far is returned with ``converged=False``.
    """
    if budget < 2:
        raise ValueError(f"shrink budget must be >= 2, got {budget}")
    session = _Session(budget)

    def replay(candidate: FaultPlan, run_suite: TestSuite) -> Dict[str, object]:
        session.replays += 1
        full = apply_plan(run_suite, graph, candidate)
        runner = FaultRunner(mapping, graph, cluster_factory, candidate,
                             runner_config, fault_config)
        outcome = runner.run_suite(full, workers=workers)
        return triage(outcome, candidate)

    def unattributed_kinds(payload) -> List[str]:
        return sorted({f["kind"] for f in payload["failures"]
                       if f["verdict"] == "unattributed"})

    session.record("shrink.start", injections=len(plan.injections),
                   cases=len(suite.cases), budget=budget,
                   seed=plan.seed, target=plan.target)

    # -- baseline ------------------------------------------------------------
    baseline = replay(plan, suite)
    signature = unattributed_kinds(baseline)
    session.record("shrink.test", replay=session.replays,
                   injections=len(plan.injections), phase="baseline",
                   failed=bool(signature), kinds=signature)
    if not signature:
        raise ValueError(
            "plan does not fail: no unattributed divergence to shrink "
            f"({baseline['divergent']} divergent, all attributed)")

    def still_fails(payload) -> bool:
        return any(kind in signature for kind in unattributed_kinds(payload))

    # -- phase 1: scope to the failing cases ---------------------------------
    failing_ids = sorted({f["case_id"] for f in baseline["failures"]
                          if f["verdict"] == "unattributed"})
    scoped_suite = TestSuite(
        [case for case in suite if case.case_id in failing_ids],
        graph=suite.graph, excluded_edges=suite.excluded_edges,
        uncovered_edges=suite.uncovered_edges)
    kept = [i for i in plan.injections if i.case_id in set(failing_ids)]
    current = plan.subset(kept)
    session.record("shrink.reduce", phase="scope",
                   kept=len(kept), dropped=len(plan.injections) - len(kept),
                   cases=failing_ids)
    if len(kept) < len(plan.injections) or len(scoped_suite.cases) < len(suite.cases):
        scoped_check = replay(current, scoped_suite)
        session.record("shrink.test", replay=session.replays,
                       injections=len(kept), phase="scope",
                       failed=still_fails(scoped_check),
                       kinds=unattributed_kinds(scoped_check))
        if not still_fails(scoped_check):
            # cases should be hermetic; if scoping lost the failure,
            # distrust the scope and shrink over the full artifacts
            scoped_suite = suite
            current = plan
            session.record("shrink.reduce", phase="scope-revert",
                           kept=len(plan.injections), dropped=0,
                           cases=[c.case_id for c in suite])

    def fails(injections: Sequence[FaultInjection],
              phase: str = "ddmin") -> bool:
        candidate = plan.subset(list(injections))
        payload = replay(candidate, scoped_suite)
        failed = still_fails(payload)
        session.record("shrink.test", replay=session.replays,
                       injections=len(candidate.injections), phase=phase,
                       failed=failed, kinds=unattributed_kinds(payload))
        return failed

    # -- phase 2: fault-independence probe -----------------------------------
    fault_independent = False
    converged = True
    if current.injections:
        if session.exhausted:
            converged = False
        elif fails((), phase="independence"):
            fault_independent = True
            session.record("shrink.reduce", phase="independence",
                           kept=0, dropped=len(current.injections))
            current = plan.subset([])

    # -- phase 3: ddmin over the injection set -------------------------------
    if current.injections and converged:
        reduced, converged = _ddmin(list(current.injections), fails, session)
        current = plan.subset(reduced)

    # -- phase 4: per-injection parameter shrinking --------------------------
    if current.injections and converged:
        shrunk, converged = _shrink_params(list(current.injections), fails,
                                           session)
        current = plan.subset(shrunk)

    session.record("shrink.done", replays=session.replays,
                   initial=len(plan.injections),
                   final=len(current.injections), signature=signature,
                   fault_independent=fault_independent, converged=converged)
    return ShrinkResult(current, len(plan.injections), session.replays,
                        signature, fault_independent, converged, session.log)


def _ddmin(items: List[FaultInjection], fails, session: _Session):
    """Zeller's ddmin: reduce ``items`` to a 1-minimal failing subset.

    Returns ``(minimal_items, converged)``; ``converged`` is False when
    the replay budget ran out mid-search.
    """
    granularity = 2
    while len(items) >= 2:
        chunks = _split(items, granularity)
        reduced = False
        for candidate in chunks + _complements(items, chunks):
            if session.exhausted:
                return items, False
            if fails(candidate):
                session.record("shrink.reduce", phase="ddmin",
                               kept=len(candidate),
                               dropped=len(items) - len(candidate))
                items = list(candidate)
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(granularity * 2, len(items))
    return items, True


def _split(items: List[FaultInjection], n: int) -> List[List[FaultInjection]]:
    """Split into ``n`` contiguous chunks, sizes as even as possible."""
    chunks, start = [], 0
    for index in range(n):
        size = (len(items) - start) // (n - index)
        if size:
            chunks.append(items[start:start + size])
        start += size
    return chunks


def _complements(items, chunks):
    if len(chunks) < 2:
        return []
    out = []
    for chunk in chunks:
        member = set(map(id, chunk))
        out.append([i for i in items if id(i) not in member])
    return out


def _shrink_params(items: List[FaultInjection], fails, session: _Session):
    """Weaken each surviving injection one dimension at a time.

    Deterministic sweep order (plan order); each accepted weakening
    restarts that injection's dimension list until no variant of any
    injection still fails.
    """
    items = list(items)
    progress = True
    while progress:
        progress = False
        for index in range(len(items)):
            for variant in _weaker_variants(items[index]):
                if session.exhausted:
                    return items, False
                trial = items[:index] + [variant] + items[index + 1:]
                if fails(trial, "params"):
                    session.record("shrink.reduce", phase="params",
                                   kept=len(items), dropped=0,
                                   weakened=variant.summary())
                    items = trial
                    progress = True
                    break
    return items, True


def _weaker_variants(injection: FaultInjection) -> List[FaultInjection]:
    """Strictly weaker single-step variants of one injection."""
    variants: List[FaultInjection] = []
    if injection.tail:
        # modeled splice: drop the last tail edge (shorter repro path)
        variants.append(injection.replace(tail=injection.tail[:-1]))
    params = injection.params
    count = params.get("count")
    if isinstance(count, int) and count > 1:
        variants.append(injection.replace(
            params={**params, "count": count - 1}))
    group = params.get("group")
    if isinstance(group, (list, tuple)) and len(group) > 1:
        variants.append(injection.replace(
            params={**params, "group": list(group)[:-1]}))
    heal_after = params.get("heal_after")
    if isinstance(heal_after, int) and heal_after > 1:
        variants.append(injection.replace(
            params={**params, "heal_after": heal_after - 1}))
    return variants
