"""raftkv: a synchronous-RPC Raft key-value store.

The analogue of the paper's Raft-java target (Section 5.2): every RPC
blocks its caller until the peer replies (request/response correlation
over the cluster network, each served on the receiver's worker thread),
mirroring Raft-java's synchronous communication.  The two Raft-java
bugs are seeded behind :class:`RaftKvConfig` flags, and the *fixed*
implementation is the vehicle for reproducing the two official-spec
bugs (Figures 10 and 11).
"""

from .config import RaftKvConfig
from .mapping import build_raftkv_mapping, default_raftkv_spec
from .node import RaftKvNode, make_raftkv_cluster

__all__ = [
    "RaftKvConfig",
    "RaftKvNode",
    "build_raftkv_mapping",
    "default_raftkv_spec",
    "make_raftkv_cluster",
]
