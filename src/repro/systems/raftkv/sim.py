"""Simulation-native raftkv: event-driven Raft KV for soak-scale runs.

The threaded :class:`~repro.systems.raftkv.node.RaftKvNode` mirrors
Raft-java's *synchronous* RPC style — every call blocks its caller
thread — which is exactly what the paper's testbed wants to control,
and exactly what a single-threaded deterministic event loop cannot
run.  :class:`SimRaftKvNode` is the same protocol rebuilt for the
simulation harness (:mod:`repro.runtime.sim`): asynchronous messages,
timers as scheduler events, batched AppendEntries, a list-based log
with O(1) append, and zero threads.  It exists to serve ``mocket
soak``'s open-loop workload at ≥1M client ops per run; the testbed
path keeps driving the threaded node.

Determinism: every random draw (election timeouts) comes from a
string-seeded per-node, per-incarnation stream; all state-machine
fingerprints are integer arithmetic (never the builtin ``hash``), so
runs are bit-identical across machines and ``PYTHONHASHSEED``.  No
wall-clock reads anywhere — enforced by
``tests/soak/test_no_wallclock_guard.py``.

One seeded soak bug ships behind a flag, mirroring how the Table-2
bugs gate the threaded systems: ``bug_skip_apply`` makes one follower
silently skip applying selected committed entries, a state-machine
divergence only end-to-end checking catches (the soak monitor's
checkpoint fingerprints, see :mod:`repro.soak.monitor`).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from ...runtime.network import Envelope
from ...runtime.node import Node
from ...runtime.sim import SimCluster, SimScheduler

__all__ = ["SimRaftKvConfig", "SimRaftKvNode", "make_sim_raftkv_cluster"]

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

# Log entries are integer 4-tuples (term, op_id, key, value); the mix
# constants below fold one into a 64-bit rolling fingerprint without
# ever touching PYTHONHASHSEED-dependent hashing.
_FP_MASK = (1 << 64) - 1
_FP_MULT = 1099511628211  # FNV-1a prime


def entry_fingerprint(fp: int, index: int, entry: Sequence[int]) -> int:
    """Fold ``entry`` (applied at 1-based ``index``) into rolling ``fp``."""
    term, op_id, key, value = entry
    h = (index * 0x9E3779B1) ^ (term * 0x85EBCA77) ^ (op_id * 0xC2B2AE3D) \
        ^ (key * 0x27D4EB2F) ^ (value * 0x165667B1)
    return ((fp ^ (h & _FP_MASK)) * _FP_MULT) & _FP_MASK


class SimRaftKvConfig:
    """Tunables for the simulated Raft KV cluster."""

    def __init__(self,
                 node_ids: Sequence[str] = ("n1", "n2", "n3"),
                 seed: str = "0",
                 election_timeout_min: float = 0.15,
                 election_timeout_max: float = 0.30,
                 heartbeat_interval: float = 0.05,
                 batch_size: int = 256,
                 check_quorum_rounds: Optional[int] = None,
                 bug_skip_apply: bool = False,
                 bug_skip_apply_node: Optional[str] = None,
                 bug_skip_apply_every: int = 1000):
        self.node_ids = list(node_ids)
        self.seed = str(seed)
        self.election_timeout_min = election_timeout_min
        self.election_timeout_max = election_timeout_max
        self.heartbeat_interval = heartbeat_interval
        self.batch_size = batch_size
        # Check-quorum (leader lease): a leader that cannot hear a
        # majority for this many heartbeat rounds steps down, so a
        # partitioned leader stops accepting writes it can never
        # commit.  Default: one election timeout's worth of rounds.
        if check_quorum_rounds is None:
            check_quorum_rounds = max(
                2, int(election_timeout_max / heartbeat_interval))
        self.check_quorum_rounds = check_quorum_rounds
        self.bug_skip_apply = bug_skip_apply
        self.bug_skip_apply_node = bug_skip_apply_node or self.node_ids[-1]
        self.bug_skip_apply_every = bug_skip_apply_every


class SimRaftKvNode(Node):
    """One event-driven Raft server + KV state machine."""

    def __init__(self, node_id: str, cluster: SimCluster, config: SimRaftKvConfig):
        super().__init__(node_id, cluster)
        self.config = config
        self.scheduler: SimScheduler = cluster.scheduler
        # Per-node, per-incarnation timer stream: restarts draw fresh
        # timeouts, but deterministically so.
        self._rng = random.Random(
            f"{config.seed}:{node_id}:{self.incarnation}:timers")
        # Raft persistent state (storage survives restarts; the log is
        # one shared list object, appended before any ack — durable).
        self.current_term: int = self.storage.get("currentTerm", 0)
        self.voted_for: Optional[str] = self.storage.get("votedFor")
        log = self.storage.get("log")
        if log is None:
            log = []
            self.storage.set("log", log)
        self.log: List[tuple] = log
        # Volatile state.
        self.role = FOLLOWER
        self.leader_hint: Optional[str] = None
        self.commit_index = 0       # number of committed entries (1-based)
        self.last_applied = 0
        self.kv: Dict[int, int] = {}
        self.kv_fp = 0              # rolling fingerprint of applied entries
        self.applied_skipped = 0    # entries the seeded bug swallowed
        self.votes_granted: set = set()
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        self._round_acks: set = set()
        self._quorum_misses = 0
        self._election_event = None
        self._heartbeat_event = None
        # The soak monitor attaches here (see repro.soak.monitor).
        self.observer = getattr(cluster, "observer", None)

    # -- lifecycle -----------------------------------------------------------
    def on_start(self) -> None:
        self.network.attach_handler(self.node_id, self.handle_envelope)
        self._arm_election_timer()

    def on_stop(self) -> None:
        self.network.detach_handler(self.node_id)
        self._cancel_timer("_election_event")
        self._cancel_timer("_heartbeat_event")

    def _cancel_timer(self, attr: str) -> None:
        event = getattr(self, attr)
        if event is not None:
            event.cancel()
            setattr(self, attr, None)

    # -- timers --------------------------------------------------------------
    def _arm_election_timer(self) -> None:
        self._cancel_timer("_election_event")
        timeout = self._rng.uniform(self.config.election_timeout_min,
                                    self.config.election_timeout_max)
        self._election_event = self.scheduler.schedule(
            timeout, self._on_election_timeout)

    def _arm_heartbeat_timer(self) -> None:
        self._cancel_timer("_heartbeat_event")
        self._heartbeat_event = self.scheduler.schedule(
            self.config.heartbeat_interval, self._on_heartbeat)

    # -- persistence helpers -------------------------------------------------
    def _persist_term_vote(self) -> None:
        self.storage.set("currentTerm", self.current_term)
        self.storage.set("votedFor", self.voted_for)

    # -- role transitions ----------------------------------------------------
    def _become_follower(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
            self._persist_term_vote()
        self.role = FOLLOWER
        self._cancel_timer("_heartbeat_event")
        self._arm_election_timer()

    def _on_election_timeout(self) -> None:
        self._election_event = None
        if not self.started:
            return
        self.role = CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self._persist_term_vote()
        self.leader_hint = None
        self.votes_granted = {self.node_id}
        last_index = len(self.log)
        last_term = self.log[-1][0] if self.log else 0
        for peer in self.peers:
            self.network.send(self.node_id, peer, {
                "type": "vote_req", "term": self.current_term,
                "candidate": self.node_id,
                "last_log_index": last_index, "last_log_term": last_term,
            })
        self._arm_election_timer()

    def _become_leader(self) -> None:
        self.role = LEADER
        self.leader_hint = self.node_id
        self._cancel_timer("_election_event")
        for peer in self.peers:
            self.next_index[peer] = len(self.log)
            self.match_index[peer] = 0
        self._round_acks = {self.node_id}
        self._quorum_misses = 0
        # The §8 no-op: committing one entry of the new term is what
        # lets the leader commit everything it inherited from earlier
        # terms (§5.4.2) — without it a quiet cluster can never drain
        # a leader change's tail.  op_id -1 marks it a no-op.
        self.log.append((self.current_term, -1, -1, 0))
        if self.observer is not None:
            self.observer.leader_elected(self, self.current_term)
        self._on_heartbeat()  # announce immediately

    # -- replication ---------------------------------------------------------
    def _on_heartbeat(self) -> None:
        self._heartbeat_event = None
        if not self.started or self.role is not LEADER:
            return
        # Check-quorum: count the peers heard from since the previous
        # round; too many majority-free rounds means this leader is on
        # the wrong side of a partition — step down instead of
        # accepting writes that can never commit.
        if len(self._round_acks) >= self.cluster.quorum_size:
            self._quorum_misses = 0
        else:
            self._quorum_misses += 1
            if self._quorum_misses >= self.config.check_quorum_rounds:
                self._become_follower(self.current_term)
                return
        self._round_acks = {self.node_id}
        for peer in self.peers:
            self._send_append(peer)
        self._arm_heartbeat_timer()

    def _send_append(self, peer: str) -> None:
        ni = self.next_index.get(peer, len(self.log))
        entries = self.log[ni:ni + self.config.batch_size]
        prev_term = self.log[ni - 1][0] if ni > 0 else 0
        self.network.send(self.node_id, peer, {
            "type": "append_req", "term": self.current_term,
            "leader": self.node_id, "prev_index": ni, "prev_term": prev_term,
            "entries": entries, "commit": self.commit_index,
        })

    def _advance_commit(self) -> None:
        """Leader: commit the highest index replicated on a quorum that
        belongs to the current term (Raft §5.4.2)."""
        matches = sorted(list(self.match_index.values()) + [len(self.log)])
        quorum_match = matches[len(matches) - self.cluster.quorum_size]
        if quorum_match > self.commit_index and quorum_match > 0 \
                and self.log[quorum_match - 1][0] == self.current_term:
            self._set_commit(quorum_match)

    def _set_commit(self, commit: int) -> None:
        old = self.commit_index
        self.commit_index = commit
        if self.observer is not None:
            self.observer.commit_advanced(self, old, commit)
        self._apply_committed()

    def _apply_committed(self) -> None:
        bug_here = (self.config.bug_skip_apply
                    and self.node_id == self.config.bug_skip_apply_node)
        while self.last_applied < self.commit_index:
            entry = self.log[self.last_applied]
            self.last_applied += 1
            if entry[1] >= 0:
                if bug_here and entry[1] % self.config.bug_skip_apply_every == 0:
                    # Seeded soak bug: silently swallow this committed op.
                    self.applied_skipped += 1
                    continue
                self.kv[entry[2]] = entry[3]
            self.kv_fp = entry_fingerprint(self.kv_fp, self.last_applied, entry)
            if self.observer is not None:
                self.observer.applied(self, self.last_applied, entry)

    # -- message handling ----------------------------------------------------
    def handle_envelope(self, envelope: Envelope) -> None:
        if not self.started:
            return
        msg = envelope.payload
        kind = msg["type"]
        term = msg["term"]
        if term > self.current_term:
            self._become_follower(term)
        if kind == "vote_req":
            self._on_vote_req(msg)
        elif kind == "vote_resp":
            self._on_vote_resp(msg)
        elif kind == "append_req":
            self._on_append_req(msg)
        elif kind == "append_resp":
            self._on_append_resp(msg)

    def _on_vote_req(self, msg: Dict[str, Any]) -> None:
        granted = False
        if msg["term"] == self.current_term and \
                self.voted_for in (None, msg["candidate"]):
            last_term = self.log[-1][0] if self.log else 0
            up_to_date = (msg["last_log_term"], msg["last_log_index"]) >= \
                (last_term, len(self.log))
            if up_to_date:
                granted = True
                self.voted_for = msg["candidate"]
                self._persist_term_vote()
                self._arm_election_timer()
        self.network.send(self.node_id, msg["candidate"], {
            "type": "vote_resp", "term": self.current_term,
            "granted": granted, "voter": self.node_id,
        })

    def _on_vote_resp(self, msg: Dict[str, Any]) -> None:
        if self.role is not CANDIDATE or msg["term"] != self.current_term:
            return
        if msg["granted"]:
            self.votes_granted.add(msg["voter"])
            if len(self.votes_granted) >= self.cluster.quorum_size:
                self._become_leader()

    def _on_append_req(self, msg: Dict[str, Any]) -> None:
        if msg["term"] < self.current_term:
            self.network.send(self.node_id, msg["leader"], {
                "type": "append_resp", "term": self.current_term,
                "ok": False, "follower": self.node_id,
                "conflict": None, "match": 0,
            })
            return
        # Valid leader for this term: stay/become follower, reset timer.
        self.role = FOLLOWER
        self.leader_hint = msg["leader"]
        self._cancel_timer("_heartbeat_event")
        self._arm_election_timer()
        prev = msg["prev_index"]
        if len(self.log) < prev or \
                (prev > 0 and self.log[prev - 1][0] != msg["prev_term"]):
            if len(self.log) < prev:
                conflict = len(self.log)
            else:
                # Back off past the whole conflicting term in one hop
                # (the §5.3 fast-backtracking optimization), so a long
                # stale tail converges in rounds, not entries.
                term_here = self.log[prev - 1][0]
                conflict = prev - 1
                while conflict > 0 and self.log[conflict - 1][0] == term_here:
                    conflict -= 1
            self.network.send(self.node_id, msg["leader"], {
                "type": "append_resp", "term": self.current_term,
                "ok": False, "follower": self.node_id,
                "conflict": conflict, "match": 0,
            })
            return
        for offset, entry in enumerate(msg["entries"]):
            index = prev + offset
            if index < len(self.log):
                if self.log[index][0] != entry[0]:
                    del self.log[index:]  # conflict: truncate the suffix
                    self.log.append(entry)
            else:
                self.log.append(entry)
        match = prev + len(msg["entries"])
        leader_commit = min(msg["commit"], match) if msg["entries"] \
            else min(msg["commit"], len(self.log))
        if leader_commit > self.commit_index:
            self._set_commit(leader_commit)
        self.network.send(self.node_id, msg["leader"], {
            "type": "append_resp", "term": self.current_term,
            "ok": True, "follower": self.node_id,
            "conflict": None, "match": match,
        })

    def _on_append_resp(self, msg: Dict[str, Any]) -> None:
        if self.role is not LEADER or msg["term"] != self.current_term:
            return
        follower = msg["follower"]
        self._round_acks.add(follower)
        if msg["ok"]:
            match = msg["match"]
            if match > self.match_index.get(follower, 0):
                self.match_index[follower] = match
            self.next_index[follower] = max(self.next_index.get(follower, 0),
                                            match)
            self._advance_commit()
        else:
            conflict = msg["conflict"]
            if conflict is not None:
                self.next_index[follower] = min(
                    self.next_index.get(follower, len(self.log)), conflict)

    # -- client path ---------------------------------------------------------
    def client_request(self, op_id: int, key: int, value: int) -> bool:
        """Accept a client write (leader only).  The entry is appended
        durably now and replicated on the next heartbeat batch; the op
        counts as acknowledged once it *applies* on the leader."""
        if self.role is not LEADER or not self.started:
            return False
        self.log.append((self.current_term, op_id, key, value))
        return True

    def __repr__(self) -> str:
        return (f"SimRaftKvNode({self.node_id}, {self.role}, "
                f"term={self.current_term}, log={len(self.log)}, "
                f"commit={self.commit_index})")


def make_sim_raftkv_cluster(config: Optional[SimRaftKvConfig] = None,
                            scheduler: Optional[SimScheduler] = None) -> SimCluster:
    """Build a simulated raftkv cluster on a seeded event loop."""
    config = config or SimRaftKvConfig()
    scheduler = scheduler or SimScheduler(config.seed)

    def factory(node_id: str, cluster: SimCluster) -> SimRaftKvNode:
        return SimRaftKvNode(node_id, cluster, config)

    return SimCluster(config.node_ids, factory, scheduler, seed=config.seed)
