"""Spec↔implementation mapping for raftkv.

raftkv's communication is synchronous, so its model is the raftkv
variant of the Raft spec (no drop/duplicate faults, Section 5.2).  The
mapping uses ``STRICT`` message checking — every request and reply
content is modelled faithfully — which is also what exposes official
Raft spec bug #2 (Figure 11) when the *fixed* implementation is run
against the ``spec_bugs=True`` model.
"""

from __future__ import annotations

from typing import Optional

from ...core.mapping import MessageCheckMode, SpecMapping
from ...specs.raft import CANDIDATE, FOLLOWER, LEADER, NIL, build_raftkv_spec
from ...tlaplus import Specification
from .config import RaftKvConfig
from .node import KvRole

__all__ = ["default_raftkv_spec", "build_raftkv_mapping"]


def default_raftkv_spec(**kwargs) -> Specification:
    """The raftkv model with the defaults used by tests and benches."""
    kwargs.setdefault("servers", ("n1", "n2", "n3"))
    kwargs.setdefault("max_term", 1)
    kwargs.setdefault("max_client_requests", 0)
    return build_raftkv_spec(**kwargs)


def build_raftkv_mapping(spec: Specification,
                         config: Optional[RaftKvConfig] = None) -> SpecMapping:
    """Build the raftkv mapping for ``spec``."""
    mapping = SpecMapping(spec, message_check=MessageCheckMode.STRICT)

    # -- constants ------------------------------------------------------------
    mapping.map_constant(FOLLOWER, KvRole.FOLLOWER)
    mapping.map_constant(CANDIDATE, KvRole.CANDIDATE)
    mapping.map_constant(LEADER, KvRole.LEADER)
    mapping.map_constant(NIL, None)

    # -- variables --------------------------------------------------------------
    for name in ("state", "currentTerm", "votedFor", "log", "commitIndex",
                 "votesGranted", "votesResponded", "nextIndex", "matchIndex"):
        mapping.map_variable(name)

    # -- actions ------------------------------------------------------------------
    mapping.map_user_request(
        "Timeout",
        lambda cluster, params, occ: cluster.node(params["i"]).trigger_timeout(),
    )
    mapping.map_user_request(
        "RequestVote",
        lambda cluster, params, occ: cluster.node(params["i"])
        .solicit_vote(params["j"]),
    )
    mapping.map_user_request(
        "AppendEntries",
        lambda cluster, params, occ: cluster.node(params["i"])
        .replicate(params["j"]),
    )
    mapping.map_user_request(
        "ClientRequest",
        lambda cluster, params, occ: cluster.node(params["i"]).client_request(occ),
    )
    mapping.map_user_request(
        "BecomeLeader",
        lambda cluster, params, occ: cluster.node(params["i"]).become_leader(),
    )
    mapping.map_user_request(
        "AdvanceCommitIndex",
        lambda cluster, params, occ: cluster.node(params["i"]).advance_commit_index(),
    )
    mapping.map_action("HandleRequestVoteRequest")
    mapping.map_action("HandleRequestVoteResponse")
    mapping.map_action("HandleAppendEntriesRequest")
    mapping.map_action("HandleAppendEntriesResponse")
    if "Restart" in spec.actions:
        mapping.map_restart("Restart", node_param="i")
    if "UpdateTerm" in spec.actions:
        # The official spec's standalone UpdateTerm (Figure 10) has no
        # implementation counterpart — raftkv folds term updates into its
        # handlers.  Mapping it as a spontaneous action is exactly what
        # surfaces the spec bug: the scheduled action never notifies.
        mapping.map_action("UpdateTerm")

    mapping.bind_default_events()
    mapping.validate()
    return mapping
