"""The raftkv node: synchronous-RPC Raft with a small KV state machine.

Raft-java style: ``solicit_vote``/``replicate`` issue a *blocking* RPC —
the caller thread sends the request, waits for the reply envelope, and
then handles the response on the same thread.  The receiver serves each
incoming request on its own worker thread.  Committed log entries are
applied to an in-memory key/value store (the part clients see).
"""

from __future__ import annotations

import enum
import itertools
import threading
from typing import Any, Dict, Optional, Tuple

from ...core.mapping import action_span, get_msg, mocket_receive, traced_field
from ...runtime.cluster import Cluster
from ...runtime.node import Node, NodeCrashed
from .config import RaftKvConfig

__all__ = ["KvRole", "RaftKvNode", "make_raftkv_cluster"]

RV_REQUEST = "RequestVoteRequest"
RV_RESPONSE = "RequestVoteResponse"
AE_REQUEST = "AppendEntriesRequest"
AE_RESPONSE = "AppendEntriesResponse"


class KvRole(enum.Enum):
    # NB: not an IntEnum — int-valued roles would compare equal to real
    # integers and corrupt the constant-translation table.
    FOLLOWER = "FOLLOWER"
    CANDIDATE = "CANDIDATE"
    LEADER = "LEADER"


def _last_term(log: Tuple[Tuple[int, Any], ...]) -> int:
    return log[-1][0] if log else 0


def spec_msg_of(body: Dict[str, Any]) -> Dict[str, Any]:
    """The spec message record corresponding to a wire body."""
    mtype = body["type"]
    if mtype == RV_REQUEST:
        return {"mtype": mtype, "mterm": body["term"],
                "mlastLogTerm": body["last_log_term"],
                "mlastLogIndex": body["last_log_index"],
                "msource": body["src"], "mdest": body["dst"]}
    if mtype == RV_RESPONSE:
        return {"mtype": mtype, "mterm": body["term"],
                "mvoteGranted": body["granted"],
                "msource": body["src"], "mdest": body["dst"]}
    if mtype == AE_REQUEST:
        return {"mtype": mtype, "mterm": body["term"],
                "mprevLogIndex": body["prev_log_index"],
                "mprevLogTerm": body["prev_log_term"],
                "mentries": tuple(tuple(e) for e in body["entries"]),
                "mcommitIndex": body["commit_index"],
                "msource": body["src"], "mdest": body["dst"]}
    if mtype == AE_RESPONSE:
        return {"mtype": mtype, "mterm": body["term"],
                "msuccess": body["success"], "mmatchIndex": body["match_index"],
                "msource": body["src"], "mdest": body["dst"]}
    raise ValueError(f"unknown body type {mtype!r}")


class _RpcWaiter:
    """One outstanding blocking RPC."""

    __slots__ = ("event", "reply")

    def __init__(self):
        self.event = threading.Event()
        self.reply = None


class RaftKvNode(Node):
    """One raftkv server."""

    role = traced_field("state")
    current_term = traced_field("currentTerm")
    voted_for = traced_field("votedFor")
    log = traced_field("log")
    commit_index = traced_field("commitIndex")
    votes_granted = traced_field("votesGranted")
    votes_responded = traced_field("votesResponded")
    next_index = traced_field("nextIndex")
    match_index = traced_field("matchIndex")

    RPC_TIMEOUT = 5.0

    def __init__(self, node_id: str, cluster: Cluster,
                 config: Optional[RaftKvConfig] = None):
        super().__init__(node_id, cluster)
        self.config = config or RaftKvConfig()
        # persistent state
        self.current_term = self.storage.get("currentTerm", 0)
        self.voted_for = self.storage.get("votedFor")
        self.log = tuple(tuple(e) for e in self.storage.get("log", ()))
        # volatile state
        self.role = KvRole.FOLLOWER
        self.commit_index = 0
        self.votes_granted = frozenset()
        self.votes_responded = frozenset()
        self.next_index = {p: 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        self.kv: Dict[Any, Any] = {}
        self._applied = 0
        self._leadership_claimed = False
        self._rpc_seq = itertools.count(1)
        self._waiters: Dict[int, _RpcWaiter] = {}

    # -- lifecycle --------------------------------------------------------------
    def on_start(self) -> None:
        self.network.register(self.node_id)
        self.spawn(self._inbox_loop, name=f"{self.node_id}-inbox")

    def _inbox_loop(self) -> None:
        while not self.stopping:
            envelope = self.network.receive(self.node_id, timeout=0.02)
            if envelope is None:
                continue
            payload = envelope.payload
            if self.stopping:
                # dequeued during shutdown: the message is still in flight
                self.network.redeliver(self.node_id, payload, src=envelope.src)
                break
            if payload.get("kind") == "reply":
                waiter = self._waiters.pop(payload["rpc_id"], None)
                if waiter is not None:
                    waiter.reply = payload["body"]
                    waiter.event.set()
                else:
                    # Orphaned reply: the caller that issued the RPC is gone
                    # (typically a restart).  The response is still in
                    # flight protocol-wise, so hand it to the handler.
                    self.spawn(lambda p=payload: self._deliver_reply_safe(p["body"]),
                               name=f"{self.node_id}-orphan-reply")
                continue
            self.spawn(lambda p=payload: self._serve_safe(p),
                       name=f"{self.node_id}-serve")

    def _deliver_reply_safe(self, reply: Dict[str, Any]) -> None:
        """Route a reply to its handler; re-mailbox it if the node dies
        before the handler ran (the reply is still in flight)."""
        try:
            self._deliver_reply(reply)
        except NodeCrashed:
            self.network.redeliver(self.node_id,
                                   {"kind": "reply", "rpc_id": -1, "body": reply})
            raise

    def _deliver_reply(self, reply: Dict[str, Any]) -> None:
        self._maybe_update_term(reply)
        if reply["type"] == RV_RESPONSE:
            self.handle_request_vote_response(reply)
        elif reply["type"] == AE_RESPONSE:
            self.handle_append_entries_response(reply)

    def _serve_safe(self, payload: Dict[str, Any]) -> None:
        try:
            body = self._serve(payload["body"])
        except NodeCrashed:
            # the request was never handled: it is still in flight
            self.network.redeliver(self.node_id, payload, src=payload["src"])
            raise
        self.network.send(self.node_id, payload["src"], {
            "kind": "reply", "rpc_id": payload["rpc_id"], "body": body,
        })

    def _serve(self, body: Dict[str, Any]) -> Dict[str, Any]:
        self._maybe_update_term(body)
        if body["type"] == RV_REQUEST:
            return self.handle_request_vote_request(body)
        if body["type"] == AE_REQUEST:
            return self.handle_append_entries_request(body)
        raise ValueError(f"unknown request {body['type']!r}")

    def _maybe_update_term(self, body: Dict[str, Any]) -> None:
        """The official spec's standalone UpdateTerm, as a code-snippet
        action preceding the handler (only when the mapping asks for it)."""
        if not self.config.instrument_update_term:
            return
        if body["term"] <= self.current_term:
            return
        # UpdateTerm only exists in the spec-bug variants, not the
        # default model this system is linted against
        with action_span(self, "UpdateTerm", {"m": spec_msg_of(body)}):  # mocket: ignore[MCK204]
            with self.lock:
                if body["term"] > self.current_term:
                    self._step_down(body["term"])

    # -- persistence -------------------------------------------------------------------
    def _persist(self) -> None:
        self.storage.set("currentTerm", self.current_term)
        self.storage.set("votedFor", self.voted_for)
        self.storage.set("log", tuple(self.log))

    def _step_down(self, term: int) -> None:
        self.current_term = term
        self.role = KvRole.FOLLOWER
        self.voted_for = None
        self._persist()

    # -- elections ------------------------------------------------------------------------
    def trigger_timeout(self) -> None:
        """Election timeout: become candidate and vote for self."""
        with action_span(self, "Timeout", {"i": self.node_id}):
            with self.lock:
                self.role = KvRole.CANDIDATE
                self.current_term = self.current_term + 1
                self.voted_for = self.node_id
                self._persist()
                self.votes_granted = frozenset({self.node_id})
                self.votes_responded = frozenset({self.node_id})
                self._leadership_claimed = False

    def solicit_vote(self, peer: str) -> None:
        """One synchronous vote exchange with ``peer``.

        Raft-java shape: send the request (RequestVote action), block
        for the reply, then handle it (HandleRequestVoteResponse) on
        this same thread.
        """
        with action_span(self, "RequestVote", {"i": self.node_id, "j": peer}):
            with self.lock:
                term = self.current_term
                llt, lli = _last_term(self.log), len(self.log)
            request = {"type": RV_REQUEST, "term": term, "last_log_term": llt,
                       "last_log_index": lli, "src": self.node_id, "dst": peer}
            get_msg(self, "messages", mtype=RV_REQUEST, mterm=term,
                    mlastLogTerm=llt, mlastLogIndex=lli,
                    msource=self.node_id, mdest=peer)
            pending = self._call_async(peer, request)
        reply = pending()
        if reply is None:
            return
        if (self.config.bug_drop_higher_term_response
                and reply["term"] > self.current_term):
            # Raft-java issue #3: the higher-term response is discarded
            # without ever reaching the response handler.
            return
        self._deliver_reply_safe(reply)

    def _call_async(self, peer, request):
        """Issue the RPC inside the action, block for the reply after it.

        The send happens within the action span (it is part of the
        action's behaviour); the blocking wait happens outside, so the
        testbed can schedule the peer's handler in between.
        """
        rpc_id = next(self._rpc_seq)
        waiter = _RpcWaiter()
        self._waiters[rpc_id] = waiter
        self.network.send(self.node_id, peer, {
            "kind": "request", "rpc_id": rpc_id, "src": self.node_id,
            "body": request,
        })

        def wait() -> Optional[Dict[str, Any]]:
            waited = 0.0
            while waited < self.RPC_TIMEOUT:
                if waiter.event.wait(0.01):
                    return waiter.reply
                if self.stopping:
                    break
                waited += 0.01
            self._waiters.pop(rpc_id, None)
            return None

        return wait

    @mocket_receive("HandleRequestVoteRequest", "messages",
                    msg=lambda self, body: spec_msg_of(body))
    def handle_request_vote_request(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Serve a vote request; returns the RPC reply."""
        with self.lock:
            if body["term"] > self.current_term:
                self._step_down(body["term"])
            log_fresh = (
                body["last_log_term"] > _last_term(self.log)
                or (body["last_log_term"] == _last_term(self.log)
                    and body["last_log_index"] >= len(self.log))
            )
            grant = (body["term"] == self.current_term and log_fresh
                     and self.voted_for in (None, body["src"]))
            if grant:
                self.voted_for = body["src"]
                self._persist()
            term = self.current_term
        get_msg(self, "messages", mtype=RV_RESPONSE, mterm=term,
                mvoteGranted=grant, msource=self.node_id, mdest=body["src"])
        return {"type": RV_RESPONSE, "term": term, "granted": grant,
                "src": self.node_id, "dst": body["src"]}

    @mocket_receive("HandleRequestVoteResponse", "messages",
                    msg=lambda self, reply: spec_msg_of(reply))
    def handle_request_vote_response(self, reply: Dict[str, Any]) -> None:
        """Tally one vote reply on the soliciting thread."""
        with self.lock:
            if reply["term"] > self.current_term:
                self._step_down(reply["term"])
                return
            if reply["term"] < self.current_term:
                return
            self.votes_responded = self.votes_responded | {reply["src"]}
            if reply["granted"]:
                self.votes_granted = self.votes_granted | {reply["src"]}
            if (self.role is KvRole.CANDIDATE
                    and len(self.votes_granted) >= self.cluster.quorum_size
                    and not self._leadership_claimed):
                self._leadership_claimed = True
                if not self.mocket_controlled:
                    self.spawn(self.become_leader, name=f"{self.node_id}-lead")

    def become_leader(self) -> None:
        """Take leadership after winning the election."""
        with action_span(self, "BecomeLeader", {"i": self.node_id}):
            with self.lock:
                if self.role is not KvRole.CANDIDATE:
                    return
                self.role = KvRole.LEADER
                self.next_index = {p: len(self.log) + 1 for p in self.peers}
                self.match_index = {p: 0 for p in self.peers}

    # -- replication ----------------------------------------------------------------------
    def replicate(self, peer: str) -> None:
        """One synchronous AppendEntries exchange with ``peer``."""
        with action_span(self, "AppendEntries", {"i": self.node_id, "j": peer}):
            with self.lock:
                prev_index = self.next_index[peer] - 1
                prev_term = self.log[prev_index - 1][0] if prev_index > 0 else 0
                if self.next_index[peer] <= len(self.log):
                    entries = (self.log[self.next_index[peer] - 1],)
                else:
                    entries = ()
                commit = min(self.commit_index, prev_index + len(entries))
                term = self.current_term
            request = {
                "type": AE_REQUEST, "term": term, "prev_log_index": prev_index,
                "prev_log_term": prev_term,
                "entries": [list(e) for e in entries], "commit_index": commit,
                "src": self.node_id, "dst": peer,
            }
            get_msg(self, "messages", mtype=AE_REQUEST, mterm=term,
                    mprevLogIndex=prev_index, mprevLogTerm=prev_term,
                    mentries=entries, mcommitIndex=commit,
                    msource=self.node_id, mdest=peer)
            pending = self._call_async(peer, request)
        reply = pending()
        if reply is None:
            return
        self._deliver_reply_safe(reply)

    @mocket_receive("HandleAppendEntriesRequest", "messages",
                    msg=lambda self, body: spec_msg_of(body))
    def handle_append_entries_request(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Serve a replication request; returns the RPC reply."""
        with self.lock:
            if body["term"] > self.current_term:
                self._step_down(body["term"])
            term = self.current_term
            if body["term"] < term:
                return self._append_reply(body, term, False, 0)
            if self.role is KvRole.CANDIDATE:
                self.role = KvRole.FOLLOWER
            prev = body["prev_log_index"]
            log_ok = prev == 0 or (
                prev <= len(self.log)
                and self.log[prev - 1][0] == body["prev_log_term"]
            )
            if not log_ok:
                return self._append_reply(body, term, False, 0)
            entries = tuple(tuple(e) for e in body["entries"])
            if self.config.bug_append_no_truncate:
                # Raft-java issue #19: conflicting suffixes are never
                # truncated; new entries pile up at the end of the log.
                self.log = self.log + entries
            else:
                self.log = self.log[:prev] + entries
            self._persist()
            self.commit_index = min(body["commit_index"], len(self.log))
            self._apply_committed()
            return self._append_reply(body, term, True, prev + len(entries))

    def _append_reply(self, body, term, success, match) -> Dict[str, Any]:
        get_msg(self, "messages", mtype=AE_RESPONSE, mterm=term,
                msuccess=success, mmatchIndex=match,
                msource=self.node_id, mdest=body["src"])
        return {"type": AE_RESPONSE, "term": term, "success": success,
                "match_index": match, "src": self.node_id, "dst": body["src"]}

    @mocket_receive("HandleAppendEntriesResponse", "messages",
                    msg=lambda self, reply: spec_msg_of(reply))
    def handle_append_entries_response(self, reply: Dict[str, Any]) -> None:
        """Advance/back off the replication cursor on the caller thread."""
        with self.lock:
            if reply["term"] > self.current_term:
                self._step_down(reply["term"])
                return
            if reply["term"] < self.current_term or self.role is not KvRole.LEADER:
                return
            peer = reply["src"]
            if reply["success"]:
                self.next_index = {**self.next_index, peer: reply["match_index"] + 1}
                self.match_index = {**self.match_index, peer: reply["match_index"]}
                if not self.mocket_controlled and self._commit_candidate() is not None:
                    self.spawn(self.advance_commit_index,
                               name=f"{self.node_id}-commit")
            else:
                self.next_index = {
                    **self.next_index, peer: max(self.next_index[peer] - 1, 1),
                }

    def _commit_candidate(self) -> Optional[int]:
        for k in range(len(self.log), self.commit_index, -1):
            agree = 1 + sum(1 for p in self.peers if self.match_index[p] >= k)
            if agree >= self.cluster.quorum_size and self.log[k - 1][0] == self.current_term:
                return k
        return None

    def advance_commit_index(self) -> None:
        """Commit the highest quorum-replicated index of this term."""
        with action_span(self, "AdvanceCommitIndex", {"i": self.node_id}):
            with self.lock:
                best = self._commit_candidate()
                if best is not None:
                    self.commit_index = best
                    self._apply_committed()

    # -- the KV state machine -----------------------------------------------------------------
    def _apply_committed(self) -> None:
        """Apply newly committed entries to the key/value store."""
        while self._applied < self.commit_index:
            self._applied += 1
            value = self.log[self._applied - 1][1]
            if isinstance(value, (list, tuple)) and len(value) == 2:
                self.kv[value[0]] = value[1]
            else:
                self.kv[value] = value

    def client_request(self, value: Any) -> bool:
        """The run_client.sh analogue: append one client write."""
        with action_span(self, "ClientRequest", {"i": self.node_id}):
            with self.lock:
                if self.role is not KvRole.LEADER:
                    return False
                self.log = self.log + ((self.current_term, value),)
                self._persist()
                return True

    def get(self, key: Any) -> Any:
        """Read a committed value from the state machine."""
        return self.kv.get(key)


def make_raftkv_cluster(node_ids=("n1", "n2", "n3"),
                        config: Optional[RaftKvConfig] = None) -> Cluster:
    """A fresh (undeployed) raftkv cluster."""
    cfg = config or RaftKvConfig()
    return Cluster(list(node_ids),
                   lambda node_id, cluster: RaftKvNode(node_id, cluster, cfg))
