"""Configuration and the two seeded Raft-java bugs."""

from __future__ import annotations

__all__ = ["RaftKvConfig"]


class RaftKvConfig:
    """Behaviour switches for :class:`~repro.systems.raftkv.RaftKvNode`.

    The bug flags reproduce the paper's two known Raft-java bugs
    (Table 2):

    * ``bug_drop_higher_term_response`` (Raft-java issue #3 [14]) — the
      candidate silently discards a vote response carrying a higher
      term instead of stepping down, so the response is never handled.
      Detected as *missing action HandleRequestVoteResponse*.
    * ``bug_append_no_truncate`` (Raft-java issue #19 [19]) — the
      follower appends replicated entries at the end of its log instead
      of truncating the conflicting suffix at ``prevLogIndex``, so a
      stale local entry survives next to the leader's entry.  Detected
      as *inconsistent state for variable log*.

    ``instrument_update_term`` maps the official specification's
    standalone ``UpdateTerm`` action to the term-update snippet at the
    top of every handler (``Action.begin``/``Action.end`` style).  It is
    used when testing the *fixed* implementation against the official
    (``spec_bugs=True``) model, whose handlers are only enabled after a
    separate ``UpdateTerm`` step.
    """

    def __init__(self, bug_drop_higher_term_response: bool = False,
                 bug_append_no_truncate: bool = False,
                 instrument_update_term: bool = False):
        self.bug_drop_higher_term_response = bug_drop_higher_term_response
        self.bug_append_no_truncate = bug_append_no_truncate
        self.instrument_update_term = instrument_update_term

    def __repr__(self) -> str:
        flags = [name for name, on in vars(self).items() if on]
        return f"RaftKvConfig({', '.join(flags) or 'correct'})"
