"""Bug-revealing schedules for raftkv: the two Raft-java implementation
bugs plus the two official Raft specification bugs (Table 2, Figures 10
and 11).

As with the pyxraft scenarios, every schedule is verified against the
specification by :func:`repro.core.testgen.scenario_case` — if a step is
not a transition of the verified state space, building the scenario
fails.
"""

from __future__ import annotations

from typing import List

from ...core.testgen import label, scenario_case
from ...specs.raft import RaftSpecOptions, build_raft_spec
from .config import RaftKvConfig

__all__ = [
    "RaftKvScenario",
    "raftkv_bug1",
    "raftkv_bug2",
    "raft_spec_bug_update_term",
    "raft_spec_bug_missing_reply",
]


def _rv_request(src, dst, term, llt=0, lli=0):
    return {"mtype": "RequestVoteRequest", "mterm": term, "mlastLogTerm": llt,
            "mlastLogIndex": lli, "msource": src, "mdest": dst}


def _rv_response(src, dst, term, granted):
    return {"mtype": "RequestVoteResponse", "mterm": term,
            "mvoteGranted": granted, "msource": src, "mdest": dst}


def _ae_request(src, dst, term, prev_index, prev_term, entries, commit):
    return {"mtype": "AppendEntriesRequest", "mterm": term,
            "mprevLogIndex": prev_index, "mprevLogTerm": prev_term,
            "mentries": tuple(entries), "mcommitIndex": commit,
            "msource": src, "mdest": dst}


class RaftKvScenario:
    """A named bug-revealing scenario for raftkv."""

    def __init__(self, name, spec, graph, case, buggy_config, correct_config,
                 expected_kind, expected_subject, servers, is_spec_bug=False):
        self.name = name
        self.spec = spec
        self.graph = graph
        self.case = case
        self.buggy_config = buggy_config      # config expected to diverge
        self.correct_config = correct_config  # config expected to pass (None for spec bugs)
        self.expected_kind = expected_kind
        self.expected_subject = expected_subject
        self.servers = servers
        self.is_spec_bug = is_spec_bug


def raftkv_bug1() -> RaftKvScenario:
    """Raft-java issue #3 [14]: a higher-term vote response is dropped.

    Candidate n2 reaches term 2 before n1's term-1 vote request arrives;
    n2's reply carries term 2.  The fixed implementation steps down via
    ``HandleRequestVoteResponse``; the buggy one silently discards the
    reply, so the scheduled action never notifies (missing action).
    """
    servers = ("n1", "n2", "n3")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=2, max_client_requests=0,
        enable_restart=False, enable_drop=False, enable_duplicate=False,
        candidates=("n1", "n2"), name="raftkv-bug1",
    ))
    schedule = [
        label("Timeout", i="n2"),  # term 1
        label("Timeout", i="n2"),  # term 2
        label("Timeout", i="n1"),  # term 1
        label("RequestVote", i="n1", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
        label("HandleRequestVoteResponse", m=_rv_response("n2", "n1", 2, False)),
    ]
    graph, case = scenario_case(spec, schedule)
    return RaftKvScenario(
        "raftkv-bug1", spec, graph, case,
        RaftKvConfig(bug_drop_higher_term_response=True), RaftKvConfig(),
        expected_kind="missing_action",
        expected_subject="HandleRequestVoteResponse", servers=servers,
    )


def raftkv_bug2() -> RaftKvScenario:
    """Raft-java issue #19 [19]: conflicting log suffixes are not truncated.

    n3 leads term 1 and appends an entry that is never replicated; n1
    leads term 2 with a different entry at the same index.  When n1
    replicates to n3, the specification truncates n3's conflicting entry,
    but the buggy implementation appends at the end — the follower's log
    diverges (inconsistent state for variable ``log``).
    """
    servers = ("n1", "n2", "n3")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=2, max_client_requests=2,
        enable_restart=False, enable_drop=False, enable_duplicate=False,
        candidates=("n1", "n3"), name="raftkv-bug2",
    ))
    schedule = [
        label("Timeout", i="n3"),  # term 1
        label("RequestVote", i="n3", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n3", "n2", 1)),
        label("HandleRequestVoteResponse", m=_rv_response("n2", "n3", 1, True)),
        label("BecomeLeader", i="n3"),
        label("ClientRequest", i="n3"),           # n3 log: ((1, 1),) — never replicated
        label("Timeout", i="n1"),  # term 1
        label("Timeout", i="n1"),  # term 2
        label("RequestVote", i="n1", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 2)),
        label("HandleRequestVoteResponse", m=_rv_response("n2", "n1", 2, True)),
        label("BecomeLeader", i="n1"),
        label("ClientRequest", i="n1"),           # n1 log: ((2, 2),)
        label("AppendEntries", i="n1", j="n3"),
        label("HandleAppendEntriesRequest",
              m=_ae_request("n1", "n3", 2, 0, 0, [(2, 2)], 0)),
    ]
    graph, case = scenario_case(spec, schedule)
    return RaftKvScenario(
        "raftkv-bug2", spec, graph, case,
        RaftKvConfig(bug_append_no_truncate=True), RaftKvConfig(),
        expected_kind="inconsistent_state", expected_subject="log",
        servers=servers,
    )


def raft_spec_bug_update_term() -> RaftKvScenario:
    """Official Raft spec bug (Figure 10): standalone ``UpdateTerm``.

    The official specification lets ``UpdateTerm`` fire as an
    independent action.  raftkv — like every practical implementation —
    updates terms *inside* its handlers, so the scheduled ``UpdateTerm``
    step never notifies: *missing action UpdateTerm*.
    """
    servers = ("n1", "n2", "n3")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=1, max_client_requests=0,
        enable_restart=False, enable_drop=False, enable_duplicate=False,
        candidates=("n1",), spec_bugs=True, name="raft-spec-bugs",
    ))
    schedule = [
        label("Timeout", i="n1"),
        label("RequestVote", i="n1", j="n2"),
        label("RequestVote", i="n1", j="n3"),
        label("UpdateTerm", m=_rv_request("n1", "n2", 1)),
        label("UpdateTerm", m=_rv_request("n1", "n3", 1)),
    ]
    graph, case = scenario_case(spec, schedule)
    return RaftKvScenario(
        "raft-spec-bug-update-term", spec, graph, case,
        RaftKvConfig(), None,
        expected_kind="missing_action", expected_subject="UpdateTerm",
        servers=servers, is_spec_bug=True,
    )


def raft_spec_bug_missing_reply() -> RaftKvScenario:
    """Official Raft spec bug (Figure 11): the return-to-follower branch
    of ``HandleAppendEntriesRequest`` neither replies nor consumes.

    The fixed implementation (with the ``UpdateTerm`` snippet mapped so
    official-spec elections are drivable) steps down *and* replies in one
    action, so after the candidate handles the heartbeat the message
    bags disagree: *inconsistent state for variable messages*.
    """
    servers = ("n1", "n2", "n3")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=1, max_client_requests=0,
        enable_restart=False, enable_drop=False, enable_duplicate=False,
        candidates=("n1", "n2"), spec_bugs=True, name="raft-spec-bugs-reply",
    ))
    heartbeat = _ae_request("n2", "n1", 1, 0, 0, [], 0)
    schedule = [
        label("Timeout", i="n1"),  # n1 candidate, term 1
        label("Timeout", i="n2"),  # n2 candidate, term 1
        label("RequestVote", i="n2", j="n3"),
        label("UpdateTerm", m=_rv_request("n2", "n3", 1)),
        label("HandleRequestVoteRequest", m=_rv_request("n2", "n3", 1)),
        label("HandleRequestVoteResponse", m=_rv_response("n3", "n2", 1, True)),
        label("BecomeLeader", i="n2"),
        label("AppendEntries", i="n2", j="n1"),
        label("HandleAppendEntriesRequest", m=heartbeat),  # Figure 11 branch 2
    ]
    graph, case = scenario_case(spec, schedule)
    return RaftKvScenario(
        "raft-spec-bug-missing-reply", spec, graph, case,
        RaftKvConfig(instrument_update_term=True), None,
        expected_kind="inconsistent_state", expected_subject="messages",
        servers=servers, is_spec_bug=True,
    )


def all_scenarios() -> List:
    return [raftkv_bug1, raftkv_bug2,
            raft_spec_bug_update_term, raft_spec_bug_missing_reply]
