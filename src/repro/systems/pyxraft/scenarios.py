"""Bug-revealing schedules for the three Xraft bugs (Table 2, Figures 8/9).

Each scenario is a schedule of spec actions *verified against the
specification* by :func:`repro.core.testgen.scenario_case` — the
expected states are computed by the spec, never hand-written.  Running
the resulting test case against a pyxraft cluster with the matching bug
flag reproduces the paper's divergence; running it against the correct
implementation passes.
"""

from __future__ import annotations

from typing import Callable, List

from ...core.testgen import label, scenario_case
from ...specs.raft import RaftSpecOptions, build_raft_spec
from .config import XraftConfig

__all__ = ["XraftScenario", "xraft_bug1", "xraft_bug2", "xraft_bug3", "all_scenarios"]


def _rv_request(src, dst, term, llt=0, lli=0):
    return {"mtype": "RequestVoteRequest", "mterm": term, "mlastLogTerm": llt,
            "mlastLogIndex": lli, "msource": src, "mdest": dst}


def _rv_response(src, dst, term, granted):
    return {"mtype": "RequestVoteResponse", "mterm": term,
            "mvoteGranted": granted, "msource": src, "mdest": dst}


def _ae_request(src, dst, term, prev_index, prev_term, entries, commit):
    return {"mtype": "AppendEntriesRequest", "mterm": term,
            "mprevLogIndex": prev_index, "mprevLogTerm": prev_term,
            "mentries": tuple(entries), "mcommitIndex": commit,
            "msource": src, "mdest": dst}


def _ae_response(src, dst, term, success, match):
    return {"mtype": "AppendEntriesResponse", "mterm": term, "msuccess": success,
            "mmatchIndex": match, "msource": src, "mdest": dst}


class XraftScenario:
    """A named bug-revealing scenario."""

    def __init__(self, name: str, spec, graph, case,
                 buggy_config: XraftConfig, expected_kind: str,
                 expected_subject: str, servers):
        self.name = name
        self.spec = spec
        self.graph = graph
        self.case = case
        self.buggy_config = buggy_config
        self.expected_kind = expected_kind        # DivergenceKind value
        self.expected_subject = expected_subject  # variable or action name
        self.servers = servers


def xraft_bug1() -> XraftScenario:
    """Xraft bug #1 [23]: duplicated vote response makes an illegal leader.

    The schedule follows the paper's description: candidate n1 collects
    n2's grant, a duplicate-message fault copies the response, and the
    second tally diverges — the spec's ``votesGranted`` *set* absorbs
    the duplicate while the buggy counter counts it twice (6 actions,
    matching Table 2's bug-revealing case length).
    """
    servers = ("n1", "n2", "n3")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=1, max_client_requests=0,
        enable_restart=False, enable_drop=False, enable_duplicate=True,
        max_duplicates=1, candidates=("n1",), name="xraft-bug1",
    ))
    grant = _rv_response("n2", "n1", 1, True)
    schedule = [
        label("Timeout", i="n1"),
        label("RequestVote", i="n1", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
        label("DuplicateMessage", m=grant),
        label("HandleRequestVoteResponse", m=grant),
        label("HandleRequestVoteResponse", m=grant),
    ]
    graph, case = scenario_case(spec, schedule)
    return XraftScenario(
        "xraft-bug1", spec, graph, case,
        XraftConfig(bug_duplicate_vote_count=True),
        expected_kind="inconsistent_state", expected_subject="votesGranted",
        servers=servers,
    )


def xraft_bug2() -> XraftScenario:
    """Xraft bug #2 [22] (Figure 8): a restart forgets the granted vote.

    Four nodes as in Figure 8: n2 grants its vote to candidate n1, then
    restarts.  The spec keeps ``votedFor[n2] = n1`` (votes are durable);
    the buggy implementation never persisted it, so the restarted node
    reports ``votedFor = Nil`` — and would go on to vote again for n4.
    """
    servers = ("n1", "n2", "n3", "n4")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=1, max_client_requests=0,
        enable_restart=True, max_restarts=1,
        enable_drop=False, enable_duplicate=False,
        candidates=("n1", "n4"), name="xraft-bug2",
    ))
    schedule = [
        label("Timeout", i="n1"),
        label("RequestVote", i="n1", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
        label("Restart", i="n2"),
        # Figure 8's continuation: the second candidate solicits the same
        # voter.  Detection happens at the Restart step already, but the
        # full shape is kept so the verified schedule mirrors the figure.
        label("Timeout", i="n4"),
        label("RequestVote", i="n4", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n4", "n2", 1)),
        label("HandleRequestVoteResponse",
              m=_rv_response("n2", "n4", 1, False)),
        label("HandleRequestVoteResponse",
              m=_rv_response("n2", "n1", 1, True)),
    ]
    graph, case = scenario_case(spec, schedule)
    return XraftScenario(
        "xraft-bug2", spec, graph, case,
        XraftConfig(bug_votedfor_not_persisted=True),
        expected_kind="inconsistent_state", expected_subject="votedFor",
        servers=servers,
    )


def xraft_bug3() -> XraftScenario:
    """Xraft bug #3 [24] (Figure 9): a stale candidate collects forbidden
    votes and a second leader becomes possible.

    Deep schedule: n1 wins term 1, accepts a client write and replicates
    it to n2 (uncommitted).  n3 — which never saw the entry — restarts,
    times out twice and solicits n2's vote in term 2.  The specification
    rejects (n2's log is fresher); the buggy implementation answers
    ``granted=true``, surfacing as an unexpected
    ``HandleRequestVoteResponse`` exactly as in Table 2.
    """
    servers = ("n1", "n2", "n3")
    spec = build_raft_spec(RaftSpecOptions(
        servers=servers, max_term=2, max_client_requests=1,
        enable_restart=True, max_restarts=1,
        enable_drop=False, enable_duplicate=False,
        candidates=("n1", "n3"), name="xraft-bug3",
    ))
    schedule = [
        label("Timeout", i="n1"),
        label("RequestVote", i="n1", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n1", "n2", 1)),
        label("HandleRequestVoteResponse", m=_rv_response("n2", "n1", 1, True)),
        label("BecomeLeader", i="n1"),
        label("ClientRequest", i="n1"),
        label("AppendEntries", i="n1", j="n2"),
        label("HandleAppendEntriesRequest",
              m=_ae_request("n1", "n2", 1, 0, 0, [(1, 1)], 0)),
        label("HandleAppendEntriesResponse",
              m=_ae_response("n2", "n1", 1, True, 1)),
        label("Restart", i="n3"),
        label("Timeout", i="n3"),   # term 1 (competing with the leader)
        label("Timeout", i="n3"),   # term 2
        label("RequestVote", i="n3", j="n2"),
        label("HandleRequestVoteRequest", m=_rv_request("n3", "n2", 2)),
        label("HandleRequestVoteResponse",
              m=_rv_response("n2", "n3", 2, False)),
    ]
    graph, case = scenario_case(spec, schedule)
    return XraftScenario(
        "xraft-bug3", spec, graph, case,
        XraftConfig(bug_stale_vote_grant=True),
        expected_kind="unexpected_action",
        expected_subject="HandleRequestVoteResponse",
        servers=servers,
    )


def all_scenarios() -> List[Callable[[], XraftScenario]]:
    return [xraft_bug1, xraft_bug2, xraft_bug3]
