"""pyxraft: an asynchronous-communication Raft implementation.

The analogue of the paper's Xraft target (Section 5.2): every RPC is a
fire-and-forget message, incoming messages are dispatched on worker
threads, and the node keeps its persistent Raft state (currentTerm,
votedFor, log) in durable storage.  The paper's three Xraft bugs are
seeded behind :class:`XraftConfig` flags.
"""

from .config import XraftConfig
from .mapping import build_xraft_mapping, default_xraft_spec
from .messages import payload_from_spec_msg, spec_msg_from_payload
from .node import Role, XraftNode, make_xraft_cluster

__all__ = [
    "Role",
    "XraftConfig",
    "XraftNode",
    "build_xraft_mapping",
    "default_xraft_spec",
    "make_xraft_cluster",
    "payload_from_spec_msg",
    "spec_msg_from_payload",
]
