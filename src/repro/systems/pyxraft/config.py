"""Configuration and the three seeded Xraft bugs."""

from __future__ import annotations

__all__ = ["XraftConfig"]


class XraftConfig:
    """Behaviour switches for :class:`~repro.systems.pyxraft.XraftNode`.

    The bug flags reproduce the paper's three previously-unknown Xraft
    bugs (Table 2):

    * ``bug_duplicate_vote_count`` (Xraft bug #1 [23]) — ``votesGranted``
      is implemented as a plain integer counter incremented on every
      granted response, so a duplicated response message is counted
      twice and a node can become leader without a real quorum.
      Detected as *inconsistent state for variable votesGranted*.
    * ``bug_votedfor_not_persisted`` (Xraft bug #2 [22], Figure 8) —
      the node does not persist ``votedFor`` when granting a vote, so a
      restart forgets the grant and the node votes again in the same
      term, allowing two leaders.  Detected as *inconsistent state for
      variable votedFor* right after the restart.
    * ``bug_stale_vote_grant`` (Xraft bug #3 [24], Figure 9) — the
      vote-granting path mixes up which log counts: when the candidate
      looks stale against the *whole* local log but fresh against the
      *committed prefix*, the node sends ``granted=true`` anyway — and,
      because this code path treats the grant as not-a-real-vote, never
      records ``votedFor``.  A restarted/stale candidate can therefore
      collect votes the verified state space forbids and become a second
      leader.  Detected as *unexpected action HandleRequestVoteResponse*
      (the implementation offers a ``granted=true`` response where the
      specification only allows ``granted=false``).  The paper's Xraft
      mechanism involves NoOp log entries confusing the same check; ours
      exercises the identical divergence via the uncommitted-entry path
      — see EXPERIMENTS.md.

    ``election_timeout`` (seconds) arms a randomized election timer and a
    heartbeat loop, making the cluster fully autonomous in standalone
    runs.  ``None`` (default) leaves timers off: under Mocket the
    testbed plays the timer, and deterministic tests drive nodes
    explicitly.
    """

    def __init__(self, bug_duplicate_vote_count: bool = False,
                 bug_votedfor_not_persisted: bool = False,
                 bug_stale_vote_grant: bool = False,
                 election_timeout: float = None):
        self.bug_duplicate_vote_count = bug_duplicate_vote_count
        self.bug_votedfor_not_persisted = bug_votedfor_not_persisted
        self.bug_stale_vote_grant = bug_stale_vote_grant
        self.election_timeout = election_timeout

    def __repr__(self) -> str:
        flags = [name for name, on in vars(self).items() if on]
        return f"XraftConfig({', '.join(flags) or 'correct'})"
