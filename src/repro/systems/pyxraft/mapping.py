"""Spec↔implementation mapping for pyxraft (the paper's Table 1 effort).

Notable mapping choices, mirroring Section 4.1:

* ``votesGranted`` — when the duplicate-vote bug is present the
  implementation realizes the spec's *set* as an *int*, so the mapping
  compares cardinality (the paper's Xraft does exactly this),
* timer-driven actions (``Timeout``) and send actions
  (``RequestVote``/``AppendEntries``) are driven by the testbed —
  timers are disabled under controlled testing, so the testbed plays
  the role of the expired timer,
* message checking uses ``CONSUME`` mode: pyxraft's spec abstracts
  response contents, so bags are validated on consumption (this is what
  turns the deep bug #3 into an *unexpected action* report).
"""

from __future__ import annotations

from typing import Optional

from ...core.mapping import MessageCheckMode, SpecMapping
from ...specs.raft import CANDIDATE, FOLLOWER, LEADER, NIL, build_xraft_spec
from ...tlaplus import Specification, thaw
from .config import XraftConfig
from .messages import payload_from_spec_msg
from .node import Role

__all__ = ["default_xraft_spec", "build_xraft_mapping"]


def default_xraft_spec(**kwargs) -> Specification:
    """The xraft model with the defaults used by tests and benches."""
    kwargs.setdefault("servers", ("n1", "n2", "n3"))
    kwargs.setdefault("max_term", 1)
    kwargs.setdefault("max_client_requests", 0)
    return build_xraft_spec(**kwargs)


def _reinject_duplicate(cluster, msg) -> None:
    """The duplicate-message fault script: re-send the message so the
    extra copy flows through the normal delivery path."""
    plain = thaw(msg)
    payload = payload_from_spec_msg(plain)
    cluster.network.send(plain["msource"], plain["mdest"], payload)


def build_xraft_mapping(spec: Specification,
                        config: Optional[XraftConfig] = None) -> SpecMapping:
    """Build the pyxraft mapping for ``spec``."""
    cfg = config or XraftConfig()
    mapping = SpecMapping(spec, message_check=MessageCheckMode.CONSUME)

    # -- constants (Section 4.1.3) ------------------------------------------
    mapping.map_constant(FOLLOWER, Role.FOLLOWER)
    mapping.map_constant(CANDIDATE, Role.CANDIDATE)
    mapping.map_constant(LEADER, Role.LEADER)
    mapping.map_constant(NIL, None)

    # -- variables (Section 4.1.1) ----------------------------------------------
    mapping.map_variable("state")
    mapping.map_variable("currentTerm")
    mapping.map_variable("votedFor")
    mapping.map_variable("log")
    mapping.map_variable("commitIndex")
    mapping.map_variable("votesResponded")
    mapping.map_variable("nextIndex")
    mapping.map_variable("matchIndex")
    if cfg.bug_duplicate_vote_count:
        # the implementation realizes the set as a counter
        mapping.map_variable(
            "votesGranted",
            compare=lambda spec_value, impl_value: len(spec_value) == impl_value,
        )
    else:
        mapping.map_variable("votesGranted")

    # -- actions (Section 4.1.2) ---------------------------------------------------
    mapping.map_user_request(
        "Timeout",
        lambda cluster, params, occ: cluster.node(params["i"]).trigger_timeout(),
    )
    mapping.map_user_request(
        "RequestVote",
        lambda cluster, params, occ: cluster.node(params["i"])
        .send_request_vote(params["j"]),
    )
    mapping.map_user_request(
        "AppendEntries",
        lambda cluster, params, occ: cluster.node(params["i"])
        .send_append_entries(params["j"]),
    )
    mapping.map_user_request(
        "ClientRequest",
        # concrete data is not modelled; the occurrence number is the datum
        lambda cluster, params, occ: cluster.node(params["i"]).client_request(occ),
    )
    mapping.map_user_request(
        "BecomeLeader",
        lambda cluster, params, occ: cluster.node(params["i"]).become_leader(),
    )
    mapping.map_user_request(
        "AdvanceCommitIndex",
        lambda cluster, params, occ: cluster.node(params["i"]).advance_commit_index(),
    )
    mapping.map_action("HandleRequestVoteRequest")
    mapping.map_action("HandleRequestVoteResponse")
    mapping.map_action("HandleAppendEntriesRequest")
    mapping.map_action("HandleAppendEntriesResponse")
    if "Restart" in spec.actions:
        mapping.map_restart("Restart", node_param="i")
    if "DropMessage" in spec.actions:
        mapping.map_drop("DropMessage")
    if "DuplicateMessage" in spec.actions:
        mapping.map_duplicate("DuplicateMessage", _reinject_duplicate)

    mapping.bind_default_events()
    mapping.validate()
    return mapping
