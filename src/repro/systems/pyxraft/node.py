"""The pyxraft node: asynchronous Raft.

Communication is fire-and-forget: the inbox loop dispatches every
incoming message on its own worker thread (like Xraft's RPC executor),
so independent messages can be scheduled in any order by Mocket's
testbed.  Role transitions triggered *by* message handling
(``BecomeLeader``, ``AdvanceCommitIndex``) run as their own spawned
actions, mirroring Xraft's task queue.

Raft state that the protocol requires to be durable — ``currentTerm``,
``votedFor``, ``log`` — is written to the node's persistent store
(modulo the seeded persistence bug); everything else is volatile and
reset by a restart.
"""

from __future__ import annotations

import enum
import random
import time
from typing import Any, Dict, List, Optional, Tuple

from ...core.mapping import get_msg, mocket_action, mocket_receive, traced_field
from ...runtime.cluster import Cluster
from ...runtime.node import Node
from .config import XraftConfig
from .messages import (
    AE_REQUEST,
    AE_RESPONSE,
    RV_REQUEST,
    RV_RESPONSE,
    spec_msg_from_payload,
)

__all__ = ["Role", "XraftNode", "make_xraft_cluster"]


class Role(enum.Enum):
    FOLLOWER = "STATE_FOLLOWER"
    CANDIDATE = "STATE_CANDIDATE"
    LEADER = "STATE_LEADER"


def _last_term(log: Tuple[Tuple[int, Any], ...]) -> int:
    return log[-1][0] if log else 0


class XraftNode(Node):
    """One pyxraft server."""

    role = traced_field("state")
    current_term = traced_field("currentTerm")
    voted_for = traced_field("votedFor")
    log = traced_field("log")
    commit_index = traced_field("commitIndex")
    votes_granted = traced_field("votesGranted")
    votes_responded = traced_field("votesResponded")
    next_index = traced_field("nextIndex")
    match_index = traced_field("matchIndex")

    def __init__(self, node_id: str, cluster: Cluster,
                 config: Optional[XraftConfig] = None):
        super().__init__(node_id, cluster)
        self.config = config or XraftConfig()
        # persistent state (survives restarts via the durable store)
        self.current_term = self.storage.get("currentTerm", 0)
        self.voted_for = self.storage.get("votedFor")
        self.log = tuple(tuple(e) for e in self.storage.get("log", ()))
        # volatile state
        self.role = Role.FOLLOWER
        self.commit_index = 0
        self.votes_granted = 0 if self.config.bug_duplicate_vote_count else frozenset()
        self.votes_responded = frozenset()
        # nextIndex is (re)initialized when leadership is won; until then it
        # holds the protocol's base value, as in raft.tla's Init/Restart.
        self.next_index = {p: 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        self._leadership_claimed = False
        self._last_leader_contact = 0.0

    # -- lifecycle --------------------------------------------------------------
    def on_start(self) -> None:
        self.network.register(self.node_id)
        self.spawn(self._inbox_loop, name=f"{self.node_id}-inbox")
        if self.config.election_timeout is not None:
            self.spawn(self._timer_loop, name=f"{self.node_id}-timers")

    def _timer_loop(self) -> None:
        """Standalone-mode timers: election timeout + leader heartbeats.

        Never runs under Mocket (the testbed plays the timer); the
        election timeout is randomized per Raft to break ties.
        """
        base = self.config.election_timeout
        deadline = time.monotonic() + base * (1 + random.random())
        while not self.stopping:
            time.sleep(base / 10)
            if self.mocket_controlled:
                return
            now = time.monotonic()
            with self.lock:
                role = self.role
                last_seen = self._last_leader_contact
            if role is Role.LEADER:
                for peer in self.peers:
                    self.send_append_entries(peer)
                time.sleep(base / 3)
                continue
            if now - last_seen > base and now > deadline:
                self.trigger_timeout()
                for peer in self.peers:
                    self.spawn(lambda p=peer: self.send_request_vote(p),
                               name=f"{self.node_id}-rv-{peer}")
                deadline = now + base * (1 + random.random())

    def _inbox_loop(self) -> None:
        while not self.stopping:
            envelope = self.network.receive(self.node_id, timeout=0.02)
            if envelope is None:
                continue
            payload = envelope.payload
            if self.stopping:
                # dequeued during shutdown: the message is still in flight
                self.network.redeliver(self.node_id, payload, src=envelope.src)
                break
            self.spawn(lambda p=payload: self._dispatch_safe(p),
                       name=f"{self.node_id}-handle-{payload.get('type')}")

    def _dispatch_safe(self, payload: Dict[str, Any]) -> None:
        """Handle one message; if the node dies before the handler runs,
        the message goes back to the mailbox (it is still in flight)."""
        from ...runtime.node import NodeCrashed

        try:
            self._dispatch(payload)
        except NodeCrashed:
            self.network.redeliver(self.node_id, payload)
            raise

    def _dispatch(self, payload: Dict[str, Any]) -> None:
        handlers = {
            RV_REQUEST: self.handle_request_vote_request,
            RV_RESPONSE: self.handle_request_vote_response,
            AE_REQUEST: self.handle_append_entries_request,
            AE_RESPONSE: self.handle_append_entries_response,
        }
        handler = handlers.get(payload.get("type"))
        if handler is not None:
            handler(payload)

    # -- persistence ----------------------------------------------------------------
    def _persist_term(self) -> None:
        self.storage.set("currentTerm", self.current_term)

    def _persist_vote(self) -> None:
        if self.config.bug_votedfor_not_persisted:
            return  # Xraft bug #2: the vote never reaches the disk
        self.storage.set("votedFor", self.voted_for)

    def _persist_log(self) -> None:
        self.storage.set("log", tuple(self.log))

    def _step_down(self, term: int) -> None:
        """Adopt a higher term: become follower, forget the vote."""
        self.current_term = term
        self.role = Role.FOLLOWER
        self.voted_for = None
        self._persist_term()
        self._persist_vote()

    # -- elections ---------------------------------------------------------------------
    @mocket_action("Timeout", params=lambda self: {"i": self.node_id})
    def trigger_timeout(self) -> None:
        """Election timeout: become candidate, vote for self."""
        with self.lock:
            self.role = Role.CANDIDATE
            self.current_term = self.current_term + 1
            self.voted_for = self.node_id
            self._persist_term()
            self._persist_vote()
            if self.config.bug_duplicate_vote_count:
                self.votes_granted = 1
            else:
                self.votes_granted = frozenset({self.node_id})
            self.votes_responded = frozenset({self.node_id})
            self._leadership_claimed = False

    @mocket_action("RequestVote",
                   params=lambda self, peer: {"i": self.node_id, "j": peer})
    def send_request_vote(self, peer: str) -> None:
        """Solicit ``peer``'s vote for the current term."""
        with self.lock:
            term = self.current_term
            llt, lli = self._advertised_log()
        get_msg(self, "messages", mtype=RV_REQUEST, mterm=term,
                mlastLogTerm=llt, mlastLogIndex=lli,
                msource=self.node_id, mdest=peer)
        self.network.send(self.node_id, peer, {
            "type": RV_REQUEST, "term": term, "last_log_term": llt,
            "last_log_index": lli, "src": self.node_id, "dst": peer,
        })

    def _advertised_log(self) -> Tuple[int, int]:
        """(lastLogTerm, lastLogIndex) the candidate advertises."""
        return _last_term(self.log), len(self.log)

    @mocket_receive("HandleRequestVoteRequest", "messages",
                    msg=lambda self, payload: spec_msg_from_payload(payload))
    def handle_request_vote_request(self, payload: Dict[str, Any]) -> None:
        """Decide whether to grant the requested vote."""
        with self.lock:
            if payload["term"] > self.current_term:
                self._step_down(payload["term"])
            votable = (payload["term"] == self.current_term
                       and self.voted_for in (None, payload["src"]))
            grant = votable and self._candidate_log_fresh(payload)
            record_vote = grant
            if (not grant and votable and self.config.bug_stale_vote_grant
                    and self._candidate_log_fresh(payload, committed_only=True)):
                # Xraft bug #3: the grant path consults the committed
                # prefix, answers granted=true, and never stores the vote.
                grant = True
            if record_vote:
                self.voted_for = payload["src"]
                self._persist_vote()
            term = self.current_term
        get_msg(self, "messages", mtype=RV_RESPONSE, mterm=term,
                mvoteGranted=grant, msource=self.node_id, mdest=payload["src"])
        self.network.send(self.node_id, payload["src"], {
            "type": RV_RESPONSE, "term": term, "granted": grant,
            "src": self.node_id, "dst": payload["src"],
        })

    def _candidate_log_fresh(self, payload: Dict[str, Any],
                             committed_only: bool = False) -> bool:
        """Raft's log-freshness rule for granting votes.

        ``committed_only`` is the comparison the seeded Xraft bug #3
        consults: only the committed prefix counts, so uncommitted local
        entries do not protect against a stale candidate.
        """
        local = self.log[: self.commit_index] if committed_only else self.log
        if payload["last_log_term"] != _last_term(local):
            return payload["last_log_term"] > _last_term(local)
        return payload["last_log_index"] >= len(local)

    @mocket_receive("HandleRequestVoteResponse", "messages",
                    msg=lambda self, payload: spec_msg_from_payload(payload))
    def handle_request_vote_response(self, payload: Dict[str, Any]) -> None:
        """Tally one vote response; claim leadership on quorum."""
        with self.lock:
            if payload["term"] > self.current_term:
                self._step_down(payload["term"])
                return
            if payload["term"] < self.current_term:
                return  # stale response
            self.votes_responded = self.votes_responded | {payload["src"]}
            if payload["granted"]:
                if self.config.bug_duplicate_vote_count:
                    # Xraft bug #1: a counter cannot deduplicate responses
                    self.votes_granted = self.votes_granted + 1
                else:
                    self.votes_granted = self.votes_granted | {payload["src"]}
            quorum = self.cluster.quorum_size
            count = (self.votes_granted
                     if self.config.bug_duplicate_vote_count
                     else len(self.votes_granted))
            if (self.role is Role.CANDIDATE and count >= quorum
                    and not self._leadership_claimed):
                self._leadership_claimed = True
                # Standalone: claim leadership ourselves.  Under Mocket the
                # BecomeLeader action is scheduled by the testbed instead.
                if not self.mocket_controlled:
                    self.spawn(self.become_leader, name=f"{self.node_id}-lead")

    @mocket_action("BecomeLeader", params=lambda self: {"i": self.node_id})
    def become_leader(self) -> None:
        """Take leadership after winning the election."""
        with self.lock:
            if self.role is not Role.CANDIDATE:
                return
            self.role = Role.LEADER
            self.next_index = {p: len(self.log) + 1 for p in self.peers}
            self.match_index = {p: 0 for p in self.peers}

    # -- log replication ------------------------------------------------------------------
    @mocket_action("AppendEntries",
                   params=lambda self, peer: {"i": self.node_id, "j": peer})
    def send_append_entries(self, peer: str) -> None:
        """Replicate the next entry to ``peer`` (or heartbeat)."""
        with self.lock:
            prev_index = self.next_index[peer] - 1
            prev_term = self.log[prev_index - 1][0] if prev_index > 0 else 0
            if self.next_index[peer] <= len(self.log):
                entries = (self.log[self.next_index[peer] - 1],)
            else:
                entries = ()
            commit = min(self.commit_index, prev_index + len(entries))
            term = self.current_term
        get_msg(self, "messages", mtype=AE_REQUEST, mterm=term,
                mprevLogIndex=prev_index, mprevLogTerm=prev_term,
                mentries=entries, mcommitIndex=commit,
                msource=self.node_id, mdest=peer)
        self.network.send(self.node_id, peer, {
            "type": AE_REQUEST, "term": term, "prev_log_index": prev_index,
            "prev_log_term": prev_term, "entries": [list(e) for e in entries],
            "commit_index": commit, "src": self.node_id, "dst": peer,
        })

    @mocket_receive("HandleAppendEntriesRequest", "messages",
                    msg=lambda self, payload: spec_msg_from_payload(payload))
    def handle_append_entries_request(self, payload: Dict[str, Any]) -> None:
        """Append replicated entries after the consistency check."""
        with self.lock:
            self._last_leader_contact = time.monotonic()
            if payload["term"] > self.current_term:
                self._step_down(payload["term"])
            if payload["term"] < self.current_term:
                self._reply_append(payload, success=False, match=0)
                return
            if self.role is Role.CANDIDATE:
                self.role = Role.FOLLOWER  # a leader of our term exists
            prev = payload["prev_log_index"]
            log_ok = prev == 0 or (
                prev <= len(self.log) and self.log[prev - 1][0] == payload["prev_log_term"]
            )
            if not log_ok:
                self._reply_append(payload, success=False, match=0)
                return
            entries = tuple(tuple(e) for e in payload["entries"])
            self.log = self.log[:prev] + entries
            self._persist_log()
            self.commit_index = min(payload["commit_index"], len(self.log))
            self._reply_append(payload, success=True, match=prev + len(entries))

    def _reply_append(self, payload: Dict[str, Any], success: bool, match: int) -> None:
        term = self.current_term
        get_msg(self, "messages", mtype=AE_RESPONSE, mterm=term,
                msuccess=success, mmatchIndex=match,
                msource=self.node_id, mdest=payload["src"])
        self.network.send(self.node_id, payload["src"], {
            "type": AE_RESPONSE, "term": term, "success": success,
            "match_index": match, "src": self.node_id, "dst": payload["src"],
        })

    @mocket_receive("HandleAppendEntriesResponse", "messages",
                    msg=lambda self, payload: spec_msg_from_payload(payload))
    def handle_append_entries_response(self, payload: Dict[str, Any]) -> None:
        """Advance or back off the peer's replication cursor."""
        with self.lock:
            if payload["term"] > self.current_term:
                self._step_down(payload["term"])
                return
            if payload["term"] < self.current_term or self.role is not Role.LEADER:
                return
            peer = payload["src"]
            if payload["success"]:
                self.next_index = {**self.next_index, peer: payload["match_index"] + 1}
                self.match_index = {**self.match_index, peer: payload["match_index"]}
                # Standalone: advance the commit index ourselves.  Under
                # Mocket the AdvanceCommitIndex action is scheduled instead.
                if not self.mocket_controlled and self._commit_candidate() is not None:
                    self.spawn(self.advance_commit_index,
                               name=f"{self.node_id}-commit")
            else:
                self.next_index = {
                    **self.next_index,
                    peer: max(self.next_index[peer] - 1, 1),
                }

    def _commit_candidate(self) -> Optional[int]:
        """The highest index committable under Raft's quorum rule."""
        for k in range(len(self.log), self.commit_index, -1):
            agree = 1 + sum(1 for p in self.peers if self.match_index[p] >= k)
            if agree >= self.cluster.quorum_size and self.log[k - 1][0] == self.current_term:
                return k
        return None

    @mocket_action("AdvanceCommitIndex", params=lambda self: {"i": self.node_id})
    def advance_commit_index(self) -> None:
        """Commit the highest quorum-replicated index of this term."""
        with self.lock:
            best = self._commit_candidate()
            if best is not None:
                self.commit_index = best

    # -- client API ------------------------------------------------------------------------
    @mocket_action("ClientRequest", params=lambda self, value: {"i": self.node_id})
    def client_request(self, value: Any) -> bool:
        """Append a client write to the leader's log."""
        with self.lock:
            if self.role is not Role.LEADER:
                return False
            self.log = self.log + ((self.current_term, value),)
            self._persist_log()
            return True


def make_xraft_cluster(node_ids=("n1", "n2", "n3"),
                       config: Optional[XraftConfig] = None) -> Cluster:
    """A fresh (undeployed) pyxraft cluster."""
    cfg = config or XraftConfig()
    return Cluster(list(node_ids),
                   lambda node_id, cluster: XraftNode(node_id, cluster, cfg))
