"""Wire messages and their correspondence with spec message records.

pyxraft's wire format is a plain dict with implementation field names.
The converters here are used (a) by the duplicate-message fault script,
which must re-inject a *spec-domain* message into the network, and (b)
by tests asserting on traffic.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

__all__ = [
    "RV_REQUEST",
    "RV_RESPONSE",
    "AE_REQUEST",
    "AE_RESPONSE",
    "payload_from_spec_msg",
    "spec_msg_from_payload",
]

RV_REQUEST = "RequestVoteRequest"
RV_RESPONSE = "RequestVoteResponse"
AE_REQUEST = "AppendEntriesRequest"
AE_RESPONSE = "AppendEntriesResponse"

# spec record field -> wire field, per message type
_FIELD_MAPS: Dict[str, Dict[str, str]] = {
    RV_REQUEST: {
        "mterm": "term",
        "mlastLogTerm": "last_log_term",
        "mlastLogIndex": "last_log_index",
        "msource": "src",
        "mdest": "dst",
    },
    RV_RESPONSE: {
        "mterm": "term",
        "mvoteGranted": "granted",
        "msource": "src",
        "mdest": "dst",
    },
    AE_REQUEST: {
        "mterm": "term",
        "mprevLogIndex": "prev_log_index",
        "mprevLogTerm": "prev_log_term",
        "mentries": "entries",
        "mcommitIndex": "commit_index",
        "msource": "src",
        "mdest": "dst",
    },
    AE_RESPONSE: {
        "mterm": "term",
        "msuccess": "success",
        "mmatchIndex": "match_index",
        "msource": "src",
        "mdest": "dst",
    },
}


def payload_from_spec_msg(msg: Mapping[str, Any]) -> Dict[str, Any]:
    """Convert a spec message record into pyxraft's wire payload."""
    mtype = msg["mtype"]
    fields = _FIELD_MAPS.get(mtype)
    if fields is None:
        raise ValueError(f"unknown spec message type {mtype!r}")
    payload = {"type": mtype}
    for spec_field, wire_field in fields.items():
        value = msg[spec_field]
        if spec_field == "mentries":
            value = [list(entry) for entry in value]
        payload[wire_field] = value
    return payload


def spec_msg_from_payload(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Convert a wire payload back into a spec message record."""
    mtype = payload["type"]
    fields = _FIELD_MAPS.get(mtype)
    if fields is None:
        raise ValueError(f"unknown wire message type {mtype!r}")
    msg: Dict[str, Any] = {"mtype": mtype}
    for spec_field, wire_field in fields.items():
        value = payload[wire_field]
        if spec_field == "mentries":
            value = tuple(tuple(entry) for entry in value)
        msg[spec_field] = value
    return msg
