"""Configuration and seeded bugs for the toy cache server."""

from __future__ import annotations

__all__ = ["ToyCacheConfig"]


class ToyCacheConfig:
    """Behaviour switches for :class:`~repro.systems.toycache.CacheServer`.

    The three bug flags each violate the Figure 1 specification in a
    different way, exercising one divergence kind each:

    * ``bug_wrong_max`` — answer ``Max`` for every request
      (→ inconsistent state for variable ``msg``),
    * ``bug_forget_respond`` — never run the respond step
      (→ missing action ``Respond``),
    * ``bug_double_respond`` — run the respond step twice
      (→ unexpected action ``Respond`` at the end of the case).
    """

    def __init__(self, bug_wrong_max: bool = False,
                 bug_forget_respond: bool = False,
                 bug_double_respond: bool = False):
        self.bug_wrong_max = bug_wrong_max
        self.bug_forget_respond = bug_forget_respond
        self.bug_double_respond = bug_double_respond

    def __repr__(self) -> str:
        flags = [name for name, on in vars(self).items() if on]
        return f"ToyCacheConfig({', '.join(flags) or 'correct'})"
