"""The Figure 1 cache server as a system under test."""

from .config import ToyCacheConfig
from .mapping import build_toycache_mapping
from .server import CacheServer, make_toycache_cluster

__all__ = [
    "CacheServer",
    "ToyCacheConfig",
    "build_toycache_mapping",
    "make_toycache_cluster",
]
