"""Spec↔implementation mapping for the toy cache server."""

from __future__ import annotations

from ...core.mapping import SpecMapping
from ...specs.example import build_example_spec

__all__ = ["build_toycache_mapping"]


def build_toycache_mapping(data=(1, 2)) -> SpecMapping:
    """The mapping between the Figure 1 spec and :class:`CacheServer`.

    ``msg``/``cache`` map to the server's traced fields; ``stage`` is
    auxiliary (never mapped); ``Request`` is a user request driven by a
    client script; ``Respond`` is a spontaneous single-node action.
    """
    spec = build_example_spec(data=data)
    mapping = SpecMapping(spec)
    mapping.map_variable("msg")
    mapping.map_variable("cache")

    def run_request(cluster, params, occurrence):
        cluster.node("server").request(params["data"])

    mapping.map_user_request("Request", run_request)
    mapping.map_action("Respond")
    mapping.bind_default_events()
    mapping.validate()
    return mapping
