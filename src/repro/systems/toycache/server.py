"""The Figure 1 cache server implementation.

A single-node "distributed system": clients send data; the server
caches every datum and answers ``Max``/``NotMax``.  Instrumented with
Mocket annotations exactly as the paper instruments its targets —
``msg`` and ``cache`` are traced fields, ``Request`` and ``Respond``
are mapped actions.
"""

from __future__ import annotations

from typing import Optional

from ...core.mapping import mocket_action, traced_field
from ...runtime.cluster import Cluster
from ...runtime.node import Node
from ...specs.example import MAX, NIL, NOT_MAX
from .config import ToyCacheConfig

__all__ = ["CacheServer", "make_toycache_cluster"]


class CacheServer(Node):
    """The server process."""

    msg = traced_field("msg")
    cache = traced_field("cache")

    def __init__(self, node_id: str, cluster: Cluster,
                 config: Optional[ToyCacheConfig] = None):
        super().__init__(node_id, cluster)
        self.config = config or ToyCacheConfig()
        self.msg = NIL
        self.cache = frozenset()

    # -- client API ----------------------------------------------------------
    @mocket_action("Request", params=lambda self, data: {"data": data})
    def request(self, data: int) -> None:
        """A client writes ``data`` (the spec's ``Request`` action)."""
        self.msg = data
        runs = 2 if self.config.bug_double_respond else 1
        if self.config.bug_forget_respond:
            runs = 0
        for _ in range(runs):
            self.spawn(self.respond, name=f"{self.node_id}-respond")

    @mocket_action("Respond")
    def respond(self) -> None:
        """The server caches the datum and answers (the ``Respond`` action)."""
        with self.lock:
            self.cache = self.cache | {self.msg}
            if self.config.bug_wrong_max:
                self.msg = MAX
            else:
                self.msg = MAX if self.msg == max(self.cache) else NOT_MAX


def make_toycache_cluster(config: Optional[ToyCacheConfig] = None) -> Cluster:
    """A fresh single-server cluster (undeployed)."""
    cfg = config or ToyCacheConfig()
    return Cluster(["server"], lambda node_id, cluster: CacheServer(node_id, cluster, cfg))
