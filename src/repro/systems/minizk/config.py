"""Configuration and the two seeded ZooKeeper bugs."""

from __future__ import annotations

__all__ = ["MiniZkConfig"]


class MiniZkConfig:
    """Behaviour switches for :class:`~repro.systems.minizk.MiniZkNode`.

    The bug flags reproduce the paper's two known ZooKeeper bugs
    (Table 2):

    * ``bug_rebroadcast_on_worse_vote`` (ZOOKEEPER-1419 [6]) — when a
      LOOKING node receives a vote *worse* than its own in the same
      round, it re-broadcasts its own (unchanged) vote to every peer.
      In a 5-node cluster the resulting notification storm keeps the
      election from settling.  Under Mocket the extra notifications
      match no transition of the verified state space: *unexpected
      action HandleVote* (the paper's ``ReceiveMessage``).
    * ``bug_epoch_mismatch_abort`` (ZOOKEEPER-1653 [7]) — a node that
      crashed between persisting ``acceptedEpoch`` and persisting
      ``currentEpoch`` refuses to start after the restart ("inconsistent
      epoch"), so it never launches leader election.  Detected as
      *missing action StartElection*.
    """

    def __init__(self, bug_rebroadcast_on_worse_vote: bool = False,
                 bug_epoch_mismatch_abort: bool = False):
        self.bug_rebroadcast_on_worse_vote = bug_rebroadcast_on_worse_vote
        self.bug_epoch_mismatch_abort = bug_epoch_mismatch_abort

    def __repr__(self) -> str:
        flags = [name for name, on in vars(self).items() if on]
        return f"MiniZkConfig({', '.join(flags) or 'correct'})"
