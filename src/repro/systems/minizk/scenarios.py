"""Bug-revealing schedules for the two ZooKeeper bugs (Table 2)."""

from __future__ import annotations

from typing import List

from ...core.testgen import label, scenario_case
from ...specs.zab import ZabSpecOptions, build_zab_spec
from .config import MiniZkConfig

__all__ = ["MiniZkScenario", "zk_bug_1419", "zk_bug_1653", "all_scenarios"]


def _vote(src, dst, rnd, vote):
    return {"mtype": "Vote", "mround": rnd, "mvote": tuple(vote),
            "msource": src, "mdest": dst}


def _leader_info(src, dst, epoch):
    return {"mtype": "LeaderInfo", "mepoch": epoch, "msource": src, "mdest": dst}


class MiniZkScenario:
    """A named bug-revealing scenario for minizk."""

    def __init__(self, name, spec, graph, case, buggy_config,
                 expected_kind, expected_subject, servers):
        self.name = name
        self.spec = spec
        self.graph = graph
        self.case = case
        self.buggy_config = buggy_config
        self.expected_kind = expected_kind
        self.expected_subject = expected_subject
        self.servers = servers


def zk_bug_1419() -> MiniZkScenario:
    """ZOOKEEPER-1419 [6]: leader election never settles (5 nodes).

    Two candidates start the same round; when n5 receives n4's *worse*
    vote it must only record it — the buggy implementation re-broadcasts
    its own vote to everyone, and the storm of redundant notifications
    matches no transition of the verified state space (*unexpected
    action HandleVote*, the paper's ``ReceiveMessage``).
    """
    servers = ("n1", "n2", "n3", "n4", "n5")
    spec = build_zab_spec(ZabSpecOptions(
        servers=servers, max_elections=2, max_crashes=0, max_restarts=0,
        starters=("n5", "n4"), name="zk-1419",
    ))
    v5 = (0, "n5")
    v4 = (0, "n4")
    schedule = [
        label("StartElection", i="n5"),
        label("StartElection", i="n4"),
        # n5 receives n4's worse vote: record only (the bug re-broadcasts)
        label("HandleVote", m=_vote("n4", "n5", 1, v4)),
        # consume n5's original notifications; the buggy duplicates that
        # shadow them become unexpected once the originals are gone
        label("HandleVote", m=_vote("n5", "n1", 1, v5)),
        label("HandleVote", m=_vote("n5", "n2", 1, v5)),
        label("HandleVote", m=_vote("n5", "n3", 1, v5)),
    ]
    graph, case = scenario_case(spec, schedule)
    return MiniZkScenario(
        "zk-1419", spec, graph, case,
        MiniZkConfig(bug_rebroadcast_on_worse_vote=True),
        expected_kind="unexpected_action", expected_subject="HandleVote",
        servers=servers,
    )


def zk_bug_1653() -> MiniZkScenario:
    """ZOOKEEPER-1653 [7]: inconsistent epoch prevents startup.

    n3 is elected and proposes epoch 1; follower n2 persists
    ``acceptedEpoch = 1`` and crashes before NEWLEADER commits
    ``currentEpoch``.  After the restart the specification expects n2 to
    rejoin leader election, but the buggy implementation aborts on the
    mismatched epoch files: *missing action StartElection*.
    """
    servers = ("n1", "n2", "n3")
    spec = build_zab_spec(ZabSpecOptions(
        servers=servers, max_elections=2, max_crashes=1, max_restarts=1,
        starters=("n3", "n2"), name="zk-1653",
    ))
    v3 = (0, "n3")
    schedule = [
        label("StartElection", i="n3"),
        label("HandleVote", m=_vote("n3", "n2", 1, v3)),
        label("BecomeFollowing", i="n2"),
        label("HandleVote", m=_vote("n2", "n3", 1, v3)),
        label("BecomeLeading", i="n3"),
        label("SendLeaderInfo", i="n3", j="n2"),
        label("HandleLeaderInfo", m=_leader_info("n3", "n2", 1)),
        label("Crash", i="n2"),
        label("Restart", i="n2"),
        label("StartElection", i="n2"),
    ]
    graph, case = scenario_case(spec, schedule)
    return MiniZkScenario(
        "zk-1653", spec, graph, case,
        MiniZkConfig(bug_epoch_mismatch_abort=True),
        expected_kind="missing_action", expected_subject="StartElection",
        servers=servers,
    )


def all_scenarios() -> List:
    return [zk_bug_1419, zk_bug_1653]
