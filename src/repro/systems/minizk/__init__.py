"""minizk: a coordination service speaking ZAB.

The analogue of the paper's ZooKeeper target (Section 5.3): fast leader
election over vote notifications, then the ZAB synchronization
handshake (LEADERINFO → ACKEPOCH → NEWLEADER → ACK) that agrees on the
new epoch.  The two ZooKeeper bugs from Table 2 are seeded behind
:class:`MiniZkConfig` flags.
"""

from .config import MiniZkConfig
from .mapping import build_minizk_mapping, default_zab_spec
from .node import MiniZkNode, ZkState, make_minizk_cluster

__all__ = [
    "MiniZkConfig",
    "MiniZkNode",
    "ZkState",
    "build_minizk_mapping",
    "default_zab_spec",
    "make_minizk_cluster",
]
