"""The minizk node: fast leader election + ZAB synchronization.

Communication is asynchronous (ZooKeeper style): every incoming message
is dispatched on a worker thread.  ``acceptedEpoch``, ``currentEpoch``
and ``lastZxid`` are durable; the election state (round, vote, vote
table) is volatile and resets on restart — exactly the split that makes
ZOOKEEPER-1653 possible.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional, Tuple

from ...core.mapping import action_span, get_msg, mocket_receive, traced_field
from ...runtime.cluster import Cluster
from ...runtime.node import Node, NodeCrashed
from .config import MiniZkConfig

__all__ = ["ZkState", "MiniZkNode", "make_minizk_cluster"]

VOTE = "Vote"
LEADER_INFO = "LeaderInfo"
ACK_EPOCH = "AckEpoch"
NEW_LEADER = "NewLeader"
ACK = "Ack"
PROPOSAL = "Proposal"
PROPOSAL_ACK = "ProposalAck"
COMMIT = "Commit"


class ZkState(enum.Enum):
    LOOKING = "LOOKING"
    FOLLOWING = "FOLLOWING"
    LEADING = "LEADING"


class MiniZkNode(Node):
    """One minizk server."""

    state = traced_field("state")
    round = traced_field("round")
    vote = traced_field("vote")
    vote_table = traced_field("voteTable")
    leader = traced_field("leader")
    accepted_epoch = traced_field("acceptedEpoch")
    current_epoch = traced_field("currentEpoch")
    last_zxid = traced_field("lastZxid")
    ackd = traced_field("ackd")
    history = traced_field("history")
    committed = traced_field("committed")
    proposal_acks = traced_field("proposalAcks")

    def __init__(self, node_id: str, cluster: Cluster,
                 config: Optional[MiniZkConfig] = None):
        super().__init__(node_id, cluster)
        self.config = config or MiniZkConfig()
        # durable state
        self.accepted_epoch = self.storage.get("acceptedEpoch", 0)
        self.current_epoch = self.storage.get("currentEpoch", 0)
        self.last_zxid = self.storage.get("lastZxid", 0)
        self.history = tuple(tuple(e) for e in self.storage.get("history", ()))
        # volatile election state
        self.state = ZkState.LOOKING
        self.round = 0
        self.vote = None
        self.vote_table = {}
        self.leader = None
        self.ackd = frozenset()
        self.committed = 0
        self.proposal_acks = {}
        self._peer_zxid: Dict[str, int] = {}
        self.data: Dict[Any, Any] = {}
        self._applied = 0
        self.failed = False
        if (self.config.bug_epoch_mismatch_abort
                and self.accepted_epoch != self.current_epoch):
            # ZOOKEEPER-1653: loading the database trips over the epoch
            # files written on either side of the crash and aborts.
            self.failed = True

    # -- lifecycle --------------------------------------------------------------
    def on_start(self) -> None:
        if self.failed:
            return  # the process exited during startup
        self.network.register(self.node_id)
        self.spawn(self._inbox_loop, name=f"{self.node_id}-inbox")

    def _inbox_loop(self) -> None:
        while not self.stopping:
            envelope = self.network.receive(self.node_id, timeout=0.02)
            if envelope is None:
                continue
            payload = envelope.payload
            if self.stopping:
                self.network.redeliver(self.node_id, payload, src=envelope.src)
                break
            self.spawn(lambda p=payload: self._dispatch_safe(p),
                       name=f"{self.node_id}-handle-{payload.get('type')}")

    def _dispatch_safe(self, payload: Dict[str, Any]) -> None:
        try:
            self._dispatch(payload)
        except NodeCrashed:
            self.network.redeliver(self.node_id, payload)
            raise

    def _dispatch(self, payload: Dict[str, Any]) -> None:
        handlers = {
            VOTE: self.handle_vote,
            LEADER_INFO: self.handle_leader_info,
            ACK_EPOCH: self.handle_ack_epoch,
            NEW_LEADER: self.handle_new_leader,
            ACK: self.handle_ack,
            PROPOSAL: self.handle_proposal,
            PROPOSAL_ACK: self.handle_proposal_ack,
            COMMIT: self.handle_commit,
        }
        handler = handlers.get(payload.get("type"))
        if handler is not None:
            handler(payload)

    # -- persistence -----------------------------------------------------------------
    def _persist_epochs(self) -> None:
        self.storage.set("acceptedEpoch", self.accepted_epoch)
        self.storage.set("currentEpoch", self.current_epoch)

    # -- fast leader election ------------------------------------------------------------
    def _my_vote(self) -> Tuple[int, str]:
        return (self.last_zxid, self.node_id)

    def _send_vote(self, peer: str, rnd: int, vote: Tuple[int, str]) -> None:
        get_msg(self, "le_msgs", mtype=VOTE, mround=rnd, mvote=tuple(vote),
                msource=self.node_id, mdest=peer)
        self.network.send(self.node_id, peer, {
            "type": VOTE, "round": rnd, "vote": list(vote),
            "src": self.node_id, "dst": peer,
        })

    def trigger_start_election(self) -> None:
        """Start a round of leader election (Figure 5's lookForLeader)."""
        if self.failed or not self.started:
            return  # a dead process never reaches lookForLeader
        with action_span(self, "StartElection", {"i": self.node_id}):
            with self.lock:
                self.round = self.round + 1
                self.vote = self._my_vote()
                self.vote_table = {self.node_id: self.vote}
                rnd, vote = self.round, self.vote
            for peer in self.peers:
                self._send_vote(peer, rnd, vote)

    @mocket_receive("HandleVote", "le_msgs",
                    msg=lambda self, payload: {
                        "mtype": VOTE, "mround": payload["round"],
                        "mvote": tuple(payload["vote"]),
                        "msource": payload["src"], "mdest": payload["dst"],
                    })
    def handle_vote(self, payload: Dict[str, Any]) -> None:
        """Process one vote notification (Figure 5's HandleVote snippet)."""
        received = tuple(payload["vote"])
        src = payload["src"]
        with self.lock:
            if self.state is not ZkState.LOOKING:
                return  # swallow stale notifications
            if payload["round"] > self.round:
                own = self._my_vote()
                best = received if received > own else own
                self.round = payload["round"]
                self.vote = best
                self.vote_table = {self.node_id: best, src: received}
                rnd, vote = self.round, self.vote
                rebroadcast, reply_to = True, None
            elif payload["round"] < self.round:
                rnd, vote = self.round, self.vote
                rebroadcast, reply_to = False, src
            else:
                self.vote_table = {**self.vote_table, src: received}
                if received > self.vote:
                    self.vote = received
                    self.vote_table = {**self.vote_table, self.node_id: received}
                    rnd, vote = self.round, self.vote
                    rebroadcast, reply_to = True, None
                elif self.config.bug_rebroadcast_on_worse_vote:
                    # ZOOKEEPER-1419: a worse vote also triggers a full
                    # re-broadcast of the unchanged own vote, producing a
                    # notification storm that keeps elections unsettled.
                    rnd, vote = self.round, self.vote
                    rebroadcast, reply_to = True, None
                else:
                    rnd, vote = self.round, self.vote
                    rebroadcast, reply_to = False, None
            quorum_met = self._quorum_met()
        if rebroadcast:
            for peer in self.peers:
                self._send_vote(peer, rnd, vote)
        elif reply_to is not None:
            self._send_vote(reply_to, rnd, vote)
        if quorum_met and not self.mocket_controlled:
            if vote[1] == self.node_id:
                self.spawn(self.become_leading, name=f"{self.node_id}-lead")
            else:
                self.spawn(self.become_following, name=f"{self.node_id}-follow")

    def _quorum_met(self) -> bool:
        if self.vote is None:
            return False
        supporters = sum(1 for v in self.vote_table.values() if tuple(v) == self.vote)
        return supporters >= self.cluster.quorum_size

    def become_leading(self) -> None:
        """A quorum elected this node: lead and propose the next epoch."""
        with action_span(self, "BecomeLeading", {"i": self.node_id}):
            with self.lock:
                if self.state is not ZkState.LOOKING or not self._quorum_met():
                    return
                if self.vote[1] != self.node_id:
                    return
                self.state = ZkState.LEADING
                self.leader = self.node_id
                self.accepted_epoch = self.accepted_epoch + 1
                self.storage.set("acceptedEpoch", self.accepted_epoch)
                self.ackd = frozenset({self.node_id})

    def become_following(self) -> None:
        """A quorum elected someone else: follow them."""
        with action_span(self, "BecomeFollowing", {"i": self.node_id}):
            with self.lock:
                if self.state is not ZkState.LOOKING or not self._quorum_met():
                    return
                if self.vote[1] == self.node_id:
                    return
                self.state = ZkState.FOLLOWING
                self.leader = self.vote[1]

    # -- synchronization stage ----------------------------------------------------------
    def send_leader_info(self, peer: str) -> None:
        """Leader proposes its new epoch to a connected follower."""
        with action_span(self, "SendLeaderInfo", {"i": self.node_id, "j": peer}):
            with self.lock:
                epoch = self.accepted_epoch
            get_msg(self, "bc_msgs", mtype=LEADER_INFO, mepoch=epoch,
                    msource=self.node_id, mdest=peer)
            self.network.send(self.node_id, peer, {
                "type": LEADER_INFO, "epoch": epoch,
                "src": self.node_id, "dst": peer,
            })

    @mocket_receive("HandleLeaderInfo", "bc_msgs",
                    msg=lambda self, payload: {
                        "mtype": LEADER_INFO, "mepoch": payload["epoch"],
                        "msource": payload["src"], "mdest": payload["dst"],
                    })
    def handle_leader_info(self, payload: Dict[str, Any]) -> None:
        """Follower accepts the epoch — acceptedEpoch hits the disk here."""
        with self.lock:
            if self.state is not ZkState.FOLLOWING:
                return
            if payload["epoch"] < self.accepted_epoch:
                return
            self.accepted_epoch = payload["epoch"]
            self.storage.set("acceptedEpoch", self.accepted_epoch)
        get_msg(self, "bc_msgs", mtype=ACK_EPOCH, mepoch=payload["epoch"],
                msource=self.node_id, mdest=payload["src"])
        self.network.send(self.node_id, payload["src"], {
            "type": ACK_EPOCH, "epoch": payload["epoch"],
            "src": self.node_id, "dst": payload["src"],
        })

    @mocket_receive("HandleAckEpoch", "bc_msgs",
                    msg=lambda self, payload: {
                        "mtype": ACK_EPOCH, "mepoch": payload["epoch"],
                        "msource": payload["src"], "mdest": payload["dst"],
                    })
    def handle_ack_epoch(self, payload: Dict[str, Any]) -> None:
        """Leader confirms the acking follower with NEWLEADER."""
        with self.lock:
            if self.state is not ZkState.LEADING:
                return
            if payload["epoch"] != self.accepted_epoch:
                return
        get_msg(self, "bc_msgs", mtype=NEW_LEADER, mepoch=payload["epoch"],
                msource=self.node_id, mdest=payload["src"])
        self.network.send(self.node_id, payload["src"], {
            "type": NEW_LEADER, "epoch": payload["epoch"],
            "src": self.node_id, "dst": payload["src"],
        })

    @mocket_receive("HandleNewLeader", "bc_msgs",
                    msg=lambda self, payload: {
                        "mtype": NEW_LEADER, "mepoch": payload["epoch"],
                        "msource": payload["src"], "mdest": payload["dst"],
                    })
    def handle_new_leader(self, payload: Dict[str, Any]) -> None:
        """Follower commits the epoch — currentEpoch hits the disk here."""
        with self.lock:
            if self.state is not ZkState.FOLLOWING:
                return
            self.current_epoch = payload["epoch"]
            self.storage.set("currentEpoch", self.current_epoch)
        get_msg(self, "bc_msgs", mtype=ACK, mepoch=payload["epoch"],
                msource=self.node_id, mdest=payload["src"])
        self.network.send(self.node_id, payload["src"], {
            "type": ACK, "epoch": payload["epoch"],
            "src": self.node_id, "dst": payload["src"],
        })

    @mocket_receive("HandleAck", "bc_msgs",
                    msg=lambda self, payload: {
                        "mtype": ACK, "mepoch": payload["epoch"],
                        "msource": payload["src"], "mdest": payload["dst"],
                    })
    def handle_ack(self, payload: Dict[str, Any]) -> None:
        """Leader tallies NEWLEADER acks; a quorum commits its epoch."""
        with self.lock:
            if self.state is not ZkState.LEADING:
                return
            self.ackd = self.ackd | {payload["src"]}
            if len(self.ackd) >= self.cluster.quorum_size:
                self.current_epoch = self.accepted_epoch
                self.storage.set("currentEpoch", self.current_epoch)



    # -- broadcast stage ---------------------------------------------------------
    def client_request(self, value: Any) -> bool:
        """A client writes through the leader (Section 4.1.2's script)."""
        with action_span(self, "ClientRequest", {"i": self.node_id}):
            with self.lock:
                if self.state is not ZkState.LEADING:
                    return False
                if self.current_epoch != self.accepted_epoch:
                    return False  # synchronization not finished
                zxid = self.last_zxid + 1
                self.last_zxid = zxid
                self.history = self.history + ((zxid, value),)
                self.proposal_acks = {**self.proposal_acks,
                                      zxid: frozenset({self.node_id})}
                self.storage.set("lastZxid", self.last_zxid)
                self.storage.set("history", tuple(self.history))
                return True

    def send_proposal(self, peer: str) -> None:
        """Leader replicates the next proposal the peer has not logged."""
        with action_span(self, "SendProposal", {"i": self.node_id, "j": peer}):
            with self.lock:
                known = self._peer_zxid.get(peer, 0)
                pending = [e for e in self.history if e[0] > known]
                if not pending:
                    return
                zxid, value = pending[0]
            get_msg(self, "bc_msgs", mtype=PROPOSAL, mzxid=zxid, mvalue=value,
                    msource=self.node_id, mdest=peer)
            self.network.send(self.node_id, peer, {
                "type": PROPOSAL, "zxid": zxid, "value": value,
                "src": self.node_id, "dst": peer,
            })

    @mocket_receive("HandleProposal", "bc_msgs",
                    msg=lambda self, payload: {
                        "mtype": PROPOSAL, "mzxid": payload["zxid"],
                        "mvalue": payload["value"],
                        "msource": payload["src"], "mdest": payload["dst"],
                    })
    def handle_proposal(self, payload: Dict[str, Any]) -> None:
        """Follower logs the proposal (durably) and acks it."""
        with self.lock:
            if self.state is not ZkState.FOLLOWING:
                return
            if payload["zxid"] != self.last_zxid + 1:
                return  # out of order over the FIFO session
            self.last_zxid = payload["zxid"]
            self.history = self.history + ((payload["zxid"], payload["value"]),)
            self.storage.set("lastZxid", self.last_zxid)
            self.storage.set("history", tuple(self.history))
        get_msg(self, "bc_msgs", mtype=PROPOSAL_ACK, mzxid=payload["zxid"],
                msource=self.node_id, mdest=payload["src"])
        self.network.send(self.node_id, payload["src"], {
            "type": PROPOSAL_ACK, "zxid": payload["zxid"],
            "src": self.node_id, "dst": payload["src"],
        })

    @mocket_receive("HandleProposalAck", "bc_msgs",
                    msg=lambda self, payload: {
                        "mtype": PROPOSAL_ACK, "mzxid": payload["zxid"],
                        "msource": payload["src"], "mdest": payload["dst"],
                    })
    def handle_proposal_ack(self, payload: Dict[str, Any]) -> None:
        """Leader tallies the ack; a quorum commits the proposal."""
        with self.lock:
            if self.state is not ZkState.LEADING:
                return
            zxid, src = payload["zxid"], payload["src"]
            self._peer_zxid[src] = max(self._peer_zxid.get(src, 0), zxid)
            acked = self.proposal_acks.get(zxid, frozenset()) | {src}
            self.proposal_acks = {**self.proposal_acks, zxid: acked}
            if (len(acked) >= self.cluster.quorum_size
                    and zxid == self.committed + 1):
                self.committed = zxid
                self._apply_committed()

    def send_commit(self, peer: str) -> None:
        """Leader announces its commit point to a follower."""
        with action_span(self, "SendCommit", {"i": self.node_id, "j": peer}):
            with self.lock:
                zxid = self.committed
            get_msg(self, "bc_msgs", mtype=COMMIT, mzxid=zxid,
                    msource=self.node_id, mdest=peer)
            self.network.send(self.node_id, peer, {
                "type": COMMIT, "zxid": zxid,
                "src": self.node_id, "dst": peer,
            })

    @mocket_receive("HandleCommit", "bc_msgs",
                    msg=lambda self, payload: {
                        "mtype": COMMIT, "mzxid": payload["zxid"],
                        "msource": payload["src"], "mdest": payload["dst"],
                    })
    def handle_commit(self, payload: Dict[str, Any]) -> None:
        """Follower advances its commit point and applies."""
        with self.lock:
            if self.state is not ZkState.FOLLOWING:
                return
            self.committed = max(self.committed,
                                 min(payload["zxid"], self.last_zxid))
            self._apply_committed()

    def _apply_committed(self) -> None:
        """Apply newly committed proposals to the data tree."""
        while self._applied < self.committed:
            self._applied += 1
            for zxid, value in self.history:
                if zxid == self._applied:
                    self.data[zxid] = value
                    break

    def read(self, zxid: int) -> Any:
        """Read a committed value from the data tree."""
        return self.data.get(zxid)


def make_minizk_cluster(node_ids=("n1", "n2", "n3"),
                        config: Optional[MiniZkConfig] = None) -> Cluster:
    """A fresh (undeployed) minizk cluster."""
    cfg = config or MiniZkConfig()
    return Cluster(list(node_ids),
                   lambda node_id, cluster: MiniZkNode(node_id, cluster, cfg))
