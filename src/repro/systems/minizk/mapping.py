"""Spec↔implementation mapping for minizk (the ZooKeeper target).

Mirrors Section 5.3's mapping effort: two message-related variables
(``le_msgs``/``bc_msgs``) live in the testbed's message sets; the
election snippets (``StartElection``/``HandleVote``) map via
``Action.begin``/``Action.end`` style spans; ``online`` is derived from
the cluster's process table (a dead process cannot report its own
death).
"""

from __future__ import annotations

from typing import Optional

from ...core.mapping import MessageCheckMode, SpecMapping
from ...specs.zab import FOLLOWING, LEADING, LOOKING, NIL, build_zab_spec
from ...tlaplus import Specification
from .config import MiniZkConfig
from .node import ZkState

__all__ = ["default_zab_spec", "build_minizk_mapping"]


def default_zab_spec(**kwargs) -> Specification:
    """The ZAB model with the defaults used by tests and benches."""
    from ...specs.zab import ZabSpecOptions

    return build_zab_spec(ZabSpecOptions(**kwargs))


def build_minizk_mapping(spec: Specification,
                         config: Optional[MiniZkConfig] = None) -> SpecMapping:
    """Build the minizk mapping for ``spec``."""
    mapping = SpecMapping(spec, message_check=MessageCheckMode.CONSUME)

    # -- constants ------------------------------------------------------------
    mapping.map_constant(LOOKING, ZkState.LOOKING)
    mapping.map_constant(FOLLOWING, ZkState.FOLLOWING)
    mapping.map_constant(LEADING, ZkState.LEADING)
    mapping.map_constant(NIL, None)

    # -- variables --------------------------------------------------------------
    for name in ("state", "round", "vote", "voteTable", "leader",
                 "acceptedEpoch", "currentEpoch", "lastZxid", "ackd",
                 "history", "committed", "proposalAcks"):
        mapping.map_variable(name)
    mapping.map_variable(
        "online", derive=lambda cluster, node_id: cluster.is_up(node_id)
    )

    # -- actions ------------------------------------------------------------------
    mapping.map_user_request(
        "StartElection",
        lambda cluster, params, occ: cluster.node(params["i"])
        .trigger_start_election(),
    )
    mapping.map_user_request(
        "BecomeLeading",
        lambda cluster, params, occ: cluster.node(params["i"]).become_leading(),
    )
    mapping.map_user_request(
        "BecomeFollowing",
        lambda cluster, params, occ: cluster.node(params["i"]).become_following(),
    )
    mapping.map_user_request(
        "SendLeaderInfo",
        lambda cluster, params, occ: cluster.node(params["i"])
        .send_leader_info(params["j"]),
    )
    mapping.map_user_request(
        "ClientRequest",
        # concrete data is not modelled; the occurrence number is the datum
        lambda cluster, params, occ: cluster.node(params["i"]).client_request(occ),
    )
    mapping.map_user_request(
        "SendProposal",
        lambda cluster, params, occ: cluster.node(params["i"])
        .send_proposal(params["j"]),
    )
    mapping.map_user_request(
        "SendCommit",
        lambda cluster, params, occ: cluster.node(params["i"])
        .send_commit(params["j"]),
    )
    mapping.map_action("HandleVote")
    mapping.map_action("HandleLeaderInfo")
    mapping.map_action("HandleAckEpoch")
    mapping.map_action("HandleNewLeader")
    mapping.map_action("HandleAck")
    mapping.map_action("HandleProposal")
    mapping.map_action("HandleProposalAck")
    mapping.map_action("HandleCommit")
    mapping.map_crash("Crash", node_param="i")
    mapping.map_restart("Restart", node_param="i")

    mapping.bind_default_events()
    mapping.validate()
    return mapping
