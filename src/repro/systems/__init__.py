"""Systems under test.

* :mod:`repro.systems.toycache` — the Figure 1 cache server (used by the
  quickstart and the framework's own integration tests),
* :mod:`repro.systems.pyxraft` — asynchronous-communication Raft (the
  paper's Xraft target) with bugs XRAFT-1/2/3 behind flags,
* :mod:`repro.systems.raftkv` — synchronous-RPC Raft key-value store
  (the paper's Raft-java target) with bugs RAFTKV-1/2 behind flags,
* :mod:`repro.systems.minizk` — coordination service speaking ZAB (the
  paper's ZooKeeper target) with ZOOKEEPER-1419/1653 behind flags.

Every system is a normal distributed system first: it runs standalone
(no Mocket) and is instrumented with the annotations of
:mod:`repro.core.mapping` exactly as the paper instruments its Java
targets.
"""
