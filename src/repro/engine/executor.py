"""Parallel test-suite execution with per-case process isolation.

Controlled testing (``mocket test``) is wall-clock bound, not CPU
bound: every case deploys a fresh cluster and then mostly *waits* — on
scheduler notifications, action completion events and quiesce delays.
Running cases in worker processes overlaps those waits, so suite
throughput scales with workers even on a single core.

Design mirrors the sharded explorer's backend:

* workers are **forked**, so the tester — whose ``cluster_factory`` is
  usually an unpicklable closure — crosses the process boundary by
  inheritance, never by pickling,
* each worker owns a ``SimpleQueue`` of case *indices* (the suite
  itself is inherited); the master dispatches indices in case order and
  collects :class:`~repro.core.testbed.report.TestCaseResult` objects
  from a shared result queue,
* results are merged **in case order** regardless of completion order,
  so the :class:`SuiteResult` is deterministic for any worker count,
* ``stop_on_divergence`` stops *dispatching* once a failure is
  observed; because dispatch is monotone in case order, every case
  before the first failure has already been dispatched, and truncating
  the merged results at the first failing case reproduces exactly the
  serial stop-early result list,
* a dead worker (crashed cluster process, OOM kill) is detected while
  draining the result queue and surfaces as
  :class:`~repro.engine.explorer.EngineError` instead of a hang.

Tester contract: ``run_case`` must be self-contained — any per-case
mutable state has to be (re)initialized at case start, because each
worker runs whole cases serially against its own fork-inherited copy
of the tester.  The fault runner leans on this: the
:class:`~repro.faults.FaultPlan` crosses the fork by inheritance
(planned in the master, read-only here) while nemesis state is reset
inside ``_run_case``, so an injected schedule produces the same
divergence report for any worker count.  Results — including
``TestCaseResult.injected_faults`` — are plain attribute objects and
pickle back through the result queue unchanged.

Isolation caveat: per-case spans/metrics recorded *inside* a worker
stay in that worker's process (the observability registries are not
shared memory).  The master still records suite-level metrics
(``engine.cases_per_sec``, ``engine.executor_utilization``) and the
returned results carry full per-case timing.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback
import warnings
from typing import List, Optional

from ..obs import METRICS, TRACER
from ..core.testbed.report import SuiteResult, TestCaseResult
from ..core.testgen.testcase import TestSuite
from .explorer import EngineError, EngineFallbackWarning, fork_available

__all__ = ["run_suite_parallel"]


def _case_worker(tester, cases, task_queue, result_queue, worker_index) -> None:
    """Worker main loop: run dispatched case indices until told to stop."""
    try:
        while True:
            message = task_queue.get()
            if message is None:
                break
            case_index = message
            started = time.perf_counter()
            result = tester.run_case(cases[case_index])
            result_queue.put(("result", worker_index, case_index, result,
                              time.perf_counter() - started))
    except BaseException:
        result_queue.put(("error", worker_index, traceback.format_exc()))


def run_suite_parallel(
    tester,
    suite: TestSuite,
    workers: int,
    stop_on_divergence: bool = False,
    max_cases: Optional[int] = None,
) -> SuiteResult:
    """Run ``suite`` through ``tester`` with ``workers`` forked processes.

    Semantically equivalent to ``tester.run_suite(...)``: same results,
    same order, same stop-early truncation — only the wall clock
    differs.  Falls back to the serial path when only one worker is
    useful or ``fork`` is unavailable.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cases = list(suite)
    if max_cases is not None:
        cases = cases[:max_cases]
    if workers == 1 or len(cases) <= 1:
        return tester.run_suite(suite, stop_on_divergence=stop_on_divergence,
                                max_cases=max_cases)
    if not fork_available():
        warnings.warn(
            "the 'fork' start method is unavailable on this platform; "
            "running the suite serially", EngineFallbackWarning, stacklevel=2)
        return tester.run_suite(suite, stop_on_divergence=stop_on_divergence,
                                max_cases=max_cases)
    workers = min(workers, len(cases))
    with TRACER.span("engine.suite", cases=len(cases),
                     workers=workers) as suite_span:
        started = time.monotonic()
        outcome = _run_parallel(tester, cases, workers, stop_on_divergence,
                                started)
        elapsed = time.monotonic() - started
        suite_span.add(ran=len(outcome.results),
                       divergent=len(outcome.failures))
        if TRACER.enabled:
            METRICS.set_gauge("engine.executor_workers", workers)
            METRICS.set_gauge(
                "engine.cases_per_sec",
                len(outcome.results) / elapsed if elapsed > 0
                else float(len(outcome.results)))
        return outcome


def _run_parallel(tester, cases, workers: int, stop_on_divergence: bool,
                  started: float) -> SuiteResult:
    context = multiprocessing.get_context("fork")
    result_queue = context.Queue()
    task_queues = [context.SimpleQueue() for _ in range(workers)]
    processes = []
    for index in range(workers):
        process = context.Process(
            target=_case_worker,
            args=(tester, cases, task_queues[index], result_queue, index),
            daemon=True,
            name=f"mocket-case-worker-{index}",
        )
        process.start()
        processes.append(process)

    results: List[Optional[TestCaseResult]] = [None] * len(cases)
    busy_total = 0.0
    try:
        next_case = 0
        # prime every worker with one case, in case order
        for worker_index in range(workers):
            task_queues[worker_index].put(next_case)
            next_case += 1
        outstanding = workers
        dispatching = True
        while outstanding:
            try:
                message = result_queue.get(timeout=1.0)
            except queue_module.Empty:
                dead = [index for index, process in enumerate(processes)
                        if not process.is_alive()]
                if dead:
                    raise EngineError(
                        f"suite worker(s) {dead} died mid-case; "
                        f"{outstanding} case(s) were still outstanding")
                continue
            if message[0] == "error":
                raise EngineError(
                    f"suite worker {message[1]} failed:\n{message[2]}")
            _, worker_index, case_index, result, busy = message
            results[case_index] = result
            busy_total += busy
            outstanding -= 1
            if stop_on_divergence and not result.passed:
                dispatching = False
            if dispatching and next_case < len(cases):
                if not processes[worker_index].is_alive():
                    raise EngineError(
                        f"suite worker {worker_index} died after case "
                        f"{case_index}")
                task_queues[worker_index].put(next_case)
                next_case += 1
                outstanding += 1
    finally:
        for index, process in enumerate(processes):
            if process.is_alive():
                try:
                    task_queues[index].put(None)
                except (OSError, ValueError):
                    pass
        for process in processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        result_queue.close()

    merged = [result for result in results if result is not None]
    if stop_on_divergence:
        # truncate at the first failure in case order — exactly the list
        # the serial stop-early loop would have produced
        truncated = []
        for result in merged:
            truncated.append(result)
            if not result.passed:
                break
        merged = truncated
    elapsed = time.monotonic() - started
    if TRACER.enabled and elapsed > 0:
        METRICS.set_gauge("engine.executor_utilization",
                          busy_total / (elapsed * workers))
    return SuiteResult(merged, elapsed)
