"""Deterministic canonical renumbering of state graphs.

Two explorations of the same specification can discover the same states
and edges in different orders (serial FIFO BFS vs. the sharded parallel
explorer, or a graph reloaded from a DOT dump with renumbered nodes).
:func:`canonicalize` renumbers any :class:`StateGraph` into a canonical
form that depends only on the graph's *content* — the state set, the
edge multiset and the initial states — never on discovery order:

* initial states are ordered by their canonical byte encoding,
* nodes are assigned ids by a BFS that walks out-edges sorted by
  ``(action name, encoded params, encoded destination state)``,
* unreachable nodes (possible in hand-built graphs) come last, ordered
  by encoding,
* edges are inserted sorted by ``(src, action name, encoded params,
  dst)`` so edge indices are canonical too.

Two graphs hold the same states/edges/labels iff their canonical forms
render to identical DOT text; :func:`canonical_signature` hashes that
text for cheap comparison and :func:`graphs_equivalent` wraps the
comparison.  This is the oracle behind the engine's determinism
guarantee: ``check(workers=N)`` must be equivalent to ``workers=1``.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Dict, List, Tuple

from ..tlaplus.dot import to_dot
from ..tlaplus.graph import Edge, StateGraph
from ..tlaplus.state import ActionLabel
from .fingerprint import canonical_state, canonical_value, encode_canonical

__all__ = ["canonical_signature", "canonicalize", "graphs_equivalent"]


def _state_key(graph: StateGraph, node_id: int) -> bytes:
    return encode_canonical(graph.state_of(node_id)._vars)


def _edge_key(graph: StateGraph, edge: Edge) -> Tuple[str, bytes, bytes]:
    return (edge.label.name, encode_canonical(edge.label.params),
            _state_key(graph, edge.dst))


def canonicalize(graph: StateGraph) -> StateGraph:
    """Return a renumbered copy of ``graph`` independent of discovery order."""
    order: List[int] = []          # old ids in canonical visit order
    assigned: Dict[int, int] = {}  # old id -> canonical id

    def visit(old_id: int) -> None:
        assigned[old_id] = len(order)
        order.append(old_id)

    queue: List[int] = []
    for old_id in sorted(graph.initial_ids, key=lambda n: _state_key(graph, n)):
        if old_id not in assigned:
            visit(old_id)
            queue.append(old_id)
    cursor = 0
    while cursor < len(queue):
        old_id = queue[cursor]
        cursor += 1
        for edge in sorted(graph.out_edges(old_id),
                           key=lambda e: _edge_key(graph, e)):
            if edge.dst not in assigned:
                visit(edge.dst)
                queue.append(edge.dst)
    # hand-built graphs may hold states unreachable from Init
    leftovers = [n for n, _ in graph.states() if n not in assigned]
    for old_id in sorted(leftovers, key=lambda n: _state_key(graph, n)):
        visit(old_id)

    canonical = StateGraph(graph.spec_name)
    initial = set(graph.initial_ids)
    for old_id in order:
        # rebuild values in canonical container order too: equal states
        # must also *render* identically (set/dict iteration order is
        # insertion-dependent and would leak into the DOT text)
        canonical.add_state(canonical_state(graph.state_of(old_id)),
                            initial=old_id in initial)
    renumbered = sorted(
        ((assigned[e.src], e.label.name, encode_canonical(e.label.params),
          assigned[e.dst], e.label) for e in graph.edges()),
    )
    for src, _name, _params, dst, label in renumbered:
        canonical.add_edge(
            src, dst, ActionLabel(label.name, dict(canonical_value(label.params))))
    return canonical


def canonical_signature(graph: StateGraph) -> str:
    """A content hash of the canonical form (hex digest)."""
    return sha256(to_dot(canonicalize(graph)).encode("utf-8")).hexdigest()


def graphs_equivalent(left: StateGraph, right: StateGraph) -> bool:
    """True iff both graphs hold the same states, edges and initial set."""
    return to_dot(canonicalize(left)) == to_dot(canonicalize(right))
