"""Sharded, level-synchronous parallel state-space exploration.

This is the engine's substitute for :class:`~repro.tlaplus.checker.
ModelChecker` when ``workers > 1`` or checkpointing is requested — the
same design TLC's multi-worker explorer uses, adapted to Python's
process model:

* the fingerprint space is **hash-partitioned** across ``workers``
  shards (:func:`~repro.engine.fingerprint.shard_of`); shard *i* owns
  the seen-set and the unexpanded frontier of every state whose
  fingerprint lands in partition *i*,
* exploration is **level-synchronous BFS**: each round, every shard
  expands its local frontier, buckets the successors by owning shard,
  and the master exchanges the batched buckets; owners deduplicate
  against their seen-sets (with exact-state verification, so a 64-bit
  fingerprint collision raises instead of corrupting the graph), check
  invariants on new states and grow their frontiers,
* the master keeps the authoritative record — interned states, the
  per-source successor lists in ``enabled()`` emission order, initial
  fingerprints — and, at the end, **replays** a serial FIFO BFS over
  that record to build the :class:`StateGraph`.  The replay makes graph
  numbering a pure function of exploration *content*: every worker
  count yields a bit-identical graph (states, edges, ids, edge order),
  and any two runs are equivalent under
  :func:`~repro.engine.canon.canonicalize`.

Workers are forked processes (``fork`` start method, so specs with
closure-based actions need no pickling); where ``fork`` is unavailable
the shards run in-process with identical semantics.  ``workers=1`` is
the in-process degenerate case used for checkpointing serial runs.

Differences from the serial checker, by design (all deterministic):

* ``max_states`` truncation is **level-granular**: the level that
  crosses the budget is kept in full, then exploration stops — the
  serial checker instead refuses individual states mid-level,
* on an invariant violation with ``stop_on_violation=True``, the level
  where the violation was found is completed first; among the level's
  violations the engine reports the one with the smallest canonical
  state encoding (the serial checker stops at its first, discovery-
  ordered hit).

A :class:`~repro.engine.checkpoint.CheckpointStore` may be attached to
snapshot progress after every level; ``resume=True`` continues from the
latest snapshot (see ``docs/ENGINE.md`` for the format).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback
import warnings
from typing import Any, Dict, List, Optional, Tuple

from ..obs import METRICS, TRACER
from ..tlaplus.checker import CheckResult, ModelChecker
from ..tlaplus.dot import decode_value, encode_value
from ..tlaplus.errors import CheckingBudgetExceeded, InvariantViolation
from ..tlaplus.graph import StateGraph
from ..tlaplus.spec import Specification
from ..tlaplus.state import ActionLabel, State
from .checkpoint import CheckpointStore
from .fingerprint import (
    FingerprintCollision,
    canonical_state,
    canonical_value,
    encode_canonical,
    fingerprint_state,
    shard_of,
)

__all__ = ["EngineError", "EngineFallbackWarning", "ShardedExplorer",
           "explore", "fork_available"]


class EngineError(RuntimeError):
    """A worker process died or broke the exchange protocol."""


class EngineFallbackWarning(UserWarning):
    """Parallel workers were requested but process support is missing."""


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


# Successor record: (ActionLabel, successor fingerprint), in the exact
# order Specification.enabled() emitted them.
_SuccList = List[Tuple[ActionLabel, int]]


class _Shard:
    """One hash partition: seen-set + frontier for ``fp % shards == index``."""

    __slots__ = ("spec", "index", "shards", "seen", "frontier")

    def __init__(self, spec: Specification, index: int, shards: int):
        self.spec = spec
        self.index = index
        self.shards = shards
        self.seen: Dict[int, State] = {}
        self.frontier: List[int] = []

    def seed(self, entries: List[Tuple[int, State]],
             frontier_fps: List[int]) -> None:
        """Install checkpointed states (already invariant-checked)."""
        frontier_set = set(frontier_fps)
        for fingerprint, state in entries:
            self.seen[fingerprint] = state
            if fingerprint in frontier_set:
                self.frontier.append(fingerprint)

    def absorb(self, candidates: List[Tuple[int, State]]):
        """Deduplicate candidate successors against the seen-set.

        Returns ``(new, violations)`` where ``new`` is the accepted
        ``(fingerprint, state)`` pairs in candidate order and
        ``violations`` the ``(invariant, fingerprint)`` pairs among
        them.  Candidates arrive canonicalized from :meth:`expand`.
        """
        new: List[Tuple[int, State]] = []
        violations: List[Tuple[str, int]] = []
        for fingerprint, state in candidates:
            existing = self.seen.get(fingerprint)
            if existing is not None:
                if existing != state:
                    raise FingerprintCollision(
                        f"fingerprint {fingerprint:#018x} maps to two "
                        f"distinct states of spec {self.spec.name!r}")
                continue
            self.seen[fingerprint] = state
            self.frontier.append(fingerprint)
            new.append((fingerprint, state))
            invariant = self.spec.check_invariants(state)
            if invariant is not None:
                violations.append((invariant, fingerprint))
        return new, violations

    def expand(self):
        """Expand the local frontier one level.

        Returns ``(succ_lists, buckets)``: the per-source successor
        records and, per destination shard, the locally-deduplicated
        ``(fingerprint, state)`` candidates.
        """
        succ_lists: List[Tuple[int, _SuccList]] = []
        buckets: List[Dict[int, State]] = [dict() for _ in range(self.shards)]
        for fingerprint in self.frontier:
            state = self.seen[fingerprint]
            successors: _SuccList = []
            for label, successor in self.spec.enabled(state):
                succ_fp = fingerprint_state(successor)
                successors.append((label, succ_fp))
                bucket = buckets[shard_of(succ_fp, self.shards)]
                if succ_fp not in bucket:
                    bucket[succ_fp] = canonical_state(successor)
            succ_lists.append((fingerprint, successors))
        self.frontier = []
        return succ_lists, [list(bucket.items()) for bucket in buckets]


# ---------------------------------------------------------------------------
# Backends: where the shards live.
# ---------------------------------------------------------------------------

class _InlineBackend:
    """All shards in the calling process (workers=1 or no fork support)."""

    parallel = False

    def __init__(self, spec: Specification, shards: int):
        self.shards = [_Shard(spec, index, shards) for index in range(shards)]

    def seed(self, per_shard_entries, frontier_fps) -> None:
        for shard, entries in zip(self.shards, per_shard_entries):
            shard.seed(entries, frontier_fps)

    def expand(self):
        replies = []
        for shard in self.shards:
            started = time.perf_counter()
            succ_lists, buckets = shard.expand()
            replies.append((shard.index, succ_lists, buckets,
                            time.perf_counter() - started, len(shard.seen)))
        return replies

    def absorb(self, per_shard_candidates):
        replies = []
        for shard, candidates in zip(self.shards, per_shard_candidates):
            started = time.perf_counter()
            new, violations = shard.absorb(candidates)
            replies.append((shard.index, new, violations,
                            time.perf_counter() - started, len(shard.seen)))
        return replies

    def close(self) -> None:
        pass


def _shard_worker(shard: _Shard, task_queue, result_queue) -> None:
    """Worker process main loop: serve expand/absorb/seed requests."""
    try:
        while True:
            message = task_queue.get()
            operation = message[0]
            if operation == "stop":
                break
            started = time.perf_counter()
            if operation == "seed":
                shard.seed(message[1], message[2])
                result_queue.put(("seeded", shard.index, None, None,
                                  time.perf_counter() - started,
                                  len(shard.seen)))
            elif operation == "expand":
                succ_lists, buckets = shard.expand()
                result_queue.put(("expanded", shard.index, succ_lists, buckets,
                                  time.perf_counter() - started,
                                  len(shard.seen)))
            elif operation == "absorb":
                new, violations = shard.absorb(message[1])
                result_queue.put(("absorbed", shard.index, new, violations,
                                  time.perf_counter() - started,
                                  len(shard.seen)))
            else:
                result_queue.put(("error", shard.index,
                                  f"unknown operation {operation!r}"))
                break
    except BaseException:
        result_queue.put(("error", shard.index, traceback.format_exc()))


class _ForkBackend:
    """One forked process per shard, batched exchange through queues.

    The spec (with its closure-based actions) crosses into workers via
    ``fork`` inheritance, never via pickling; only states, labels and
    fingerprints travel through the queues.
    """

    parallel = True

    def __init__(self, spec: Specification, shards: int):
        context = multiprocessing.get_context("fork")
        self._result_queue = context.Queue()
        self._task_queues = [context.SimpleQueue() for _ in range(shards)]
        self._processes = []
        self.shard_count = shards
        for index in range(shards):
            process = context.Process(
                target=_shard_worker,
                args=(_Shard(spec, index, shards),
                      self._task_queues[index], self._result_queue),
                daemon=True,
                name=f"mocket-shard-{index}",
            )
            process.start()
            self._processes.append(process)

    def _send(self, index: int, message) -> None:
        if not self._processes[index].is_alive():
            raise EngineError(
                f"shard worker {index} died "
                f"(exit code {self._processes[index].exitcode})")
        self._task_queues[index].put(message)

    def _gather(self, tag: str):
        replies: Dict[int, tuple] = {}
        while len(replies) < self.shard_count:
            try:
                message = self._result_queue.get(timeout=1.0)
            except queue_module.Empty:
                missing = set(range(self.shard_count)) - set(replies)
                dead = [index for index in missing
                        if not self._processes[index].is_alive()]
                if dead:
                    raise EngineError(
                        f"shard worker(s) {dead} died while the master "
                        f"waited for {tag!r} replies")
                continue
            if message[0] == "error":
                raise EngineError(
                    f"shard worker {message[1]} failed:\n{message[2]}")
            if message[0] != tag:
                raise EngineError(
                    f"protocol error: expected {tag!r} reply, "
                    f"got {message[0]!r}")
            replies[message[1]] = message
        return [replies[index][1:] for index in sorted(replies)]

    def seed(self, per_shard_entries, frontier_fps) -> None:
        for index in range(self.shard_count):
            self._send(index, ("seed", per_shard_entries[index], frontier_fps))
        self._gather("seeded")

    def expand(self):
        for index in range(self.shard_count):
            self._send(index, ("expand",))
        return [(index, succ, buckets, busy, seen)
                for index, succ, buckets, busy, seen in self._gather("expanded")]

    def absorb(self, per_shard_candidates):
        for index in range(self.shard_count):
            self._send(index, ("absorb", per_shard_candidates[index]))
        return [(index, new, violations, busy, seen)
                for index, new, violations, busy, seen in self._gather("absorbed")]

    def close(self) -> None:
        for index, process in enumerate(self._processes):
            if process.is_alive():
                try:
                    self._task_queues[index].put(("stop",))
                except (OSError, ValueError):
                    pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        self._result_queue.close()


# ---------------------------------------------------------------------------
# The master.
# ---------------------------------------------------------------------------

class ShardedExplorer:
    """Master of the sharded exploration; produces a :class:`CheckResult`."""

    def __init__(
        self,
        spec: Specification,
        workers: int = 1,
        max_states: Optional[int] = None,
        truncate: bool = False,
        stop_on_violation: bool = True,
        checkpoint=None,
        resume: bool = False,
        checkpoint_every: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.spec = spec
        self.workers = workers
        self.max_states = max_states
        self.truncate = truncate
        self.stop_on_violation = stop_on_violation
        if checkpoint is None or isinstance(checkpoint, CheckpointStore):
            self.store: Optional[CheckpointStore] = checkpoint
        else:
            self.store = CheckpointStore(checkpoint)
        if resume and self.store is None:
            raise ValueError("resume=True requires a checkpoint store")
        self.resume = resume
        self.checkpoint_every = checkpoint_every
        # master record (fingerprint-keyed, discovery-ordered)
        self._states: Dict[int, State] = {}
        self._succ: Dict[int, _SuccList] = {}
        self._init_fps: List[int] = []
        self._frontier: List[int] = []
        # (level, canonical state encoding, invariant, fingerprint)
        self._violations: List[Tuple[int, bytes, str, int]] = []
        self._busy: Dict[int, float] = {}
        self._shard_sizes: Dict[int, int] = {}
        self._edge_total = 0

    # -- public API --------------------------------------------------------
    def run(self) -> CheckResult:
        with TRACER.span("engine.run", spec=self.spec.name,
                         workers=self.workers,
                         max_states=self.max_states) as engine_span:
            result = self._run()
            engine_span.add(states=result.states_explored,
                            edges=result.edges_explored,
                            complete=result.complete, ok=result.ok)
            return result

    # -- main loop ---------------------------------------------------------
    def _run(self) -> CheckResult:
        start = time.monotonic()
        backend = self._make_backend()
        try:
            level, finished = self._bootstrap(backend)
            if finished:
                return self._finish(start, level, complete=True)
            complete = True
            while self._frontier:
                if self._violations and self.stop_on_violation:
                    complete = False
                    break
                frontier_size = len(self._frontier)
                self._frontier = []
                per_shard = self._expand_round(backend)
                new_count = self._absorb_round(backend, per_shard, level + 1)
                level += 1
                if TRACER.enabled:
                    TRACER.emit("engine.level", level=level,
                                frontier=frontier_size, new=new_count,
                                states=len(self._states),
                                edges=self._edge_total)
                over_budget = (self.max_states is not None
                               and len(self._states) > self.max_states)
                if over_budget and not self.truncate:
                    raise CheckingBudgetExceeded(len(self._states),
                                                 self.max_states)
                if self.store and level % self.checkpoint_every == 0:
                    self._save_checkpoint(level, complete=False, start=start)
                if over_budget:
                    TRACER.emit("engine.truncated", level=level,
                                states=len(self._states),
                                max_states=self.max_states)
                    complete = False
                    break
            if self._violations and self.stop_on_violation:
                complete = False
            return self._finish(start, level, complete=complete)
        finally:
            backend.close()

    # -- rounds ------------------------------------------------------------
    def _make_backend(self):
        if self.workers == 1:
            return _InlineBackend(self.spec, 1)
        if not fork_available():
            warnings.warn(
                f"the 'fork' start method is unavailable on this platform; "
                f"running {self.workers} shards in-process "
                f"(results are identical, just not parallel)",
                EngineFallbackWarning, stacklevel=3)
            return _InlineBackend(self.spec, self.workers)
        return _ForkBackend(self.spec, self.workers)

    def _bootstrap(self, backend) -> Tuple[int, bool]:
        """Seed level 0 (or restore a checkpoint).

        Returns ``(level, finished)``; ``finished`` is True when a
        resumed checkpoint was already complete.
        """
        if self.resume:
            # load() raises CheckpointError when nothing is there: the
            # caller asked to resume, silently starting over would be worse
            payload = self.store.load(self.spec.name)
            level = self._restore(payload)
            if TRACER.enabled:
                TRACER.emit("engine.resume", level=level,
                            states=len(self._states),
                            frontier=len(self._frontier),
                            complete=bool(payload.get("complete")))
            if payload.get("complete"):
                return level, True
            per_shard: List[List[Tuple[int, State]]] = \
                [[] for _ in range(self._shard_count())]
            for fingerprint, state in self._states.items():
                per_shard[shard_of(fingerprint, len(per_shard))].append(
                    (fingerprint, state))
            backend.seed(per_shard, list(self._frontier))
            return level, False
        shards = self._shard_count()
        per_shard = [[] for _ in range(shards)]
        queued = set()
        for state in self.spec.initial_states():
            state = canonical_state(state)
            fingerprint = fingerprint_state(state)
            if fingerprint in queued:
                continue
            queued.add(fingerprint)
            self._init_fps.append(fingerprint)
            per_shard[shard_of(fingerprint, shards)].append(
                (fingerprint, state))
        self._absorb_round(backend, per_shard, level=0)
        if self.store:
            self._save_checkpoint(0, complete=False,
                                  start=time.monotonic())
        return 0, False

    def _shard_count(self) -> int:
        return 1 if self.workers == 1 else self.workers

    def _expand_round(self, backend) -> List[List[Tuple[int, State]]]:
        replies = backend.expand()
        per_shard: List[List[Tuple[int, State]]] = \
            [[] for _ in range(self._shard_count())]
        for index, succ_lists, buckets, busy, seen_size in replies:
            for src_fp, successors in succ_lists:
                self._succ[src_fp] = successors
                self._edge_total += len(successors)
            for destination, bucket in enumerate(buckets):
                per_shard[destination].extend(bucket)
            self._busy[index] = self._busy.get(index, 0.0) + busy
            self._shard_sizes[index] = seen_size
        return per_shard

    def _absorb_round(self, backend, per_shard, level: int) -> int:
        replies = backend.absorb(per_shard)
        new_count = 0
        for index, new, violations, busy, seen_size in replies:
            for fingerprint, state in new:
                self._states[fingerprint] = state
                self._frontier.append(fingerprint)
                new_count += 1
            for invariant, fingerprint in violations:
                self._violations.append(
                    (level, encode_canonical(self._states[fingerprint]._vars),
                     invariant, fingerprint))
            self._busy[index] = self._busy.get(index, 0.0) + busy
            self._shard_sizes[index] = seen_size
        return new_count

    # -- graph assembly ----------------------------------------------------
    def _build_graph(self):
        """Replay a serial FIFO BFS over the master record.

        This reproduces, call for call, the order in which the serial
        checker interns states and inserts edges — so the resulting
        graph does not depend on how many workers explored it.
        """
        graph = StateGraph(self.spec.name)
        parents: Dict[int, Optional[tuple]] = {}
        depth: Dict[int, int] = {}
        fp_to_id: Dict[int, int] = {}
        order: List[Tuple[int, int]] = []   # (node_id, fingerprint) FIFO
        # re-canonicalize here, at the single point everything funnels
        # through: pickle does not preserve set/dict *layout* (it
        # re-inserts elements in iteration order), so values that were
        # canonical in a worker may come off the queue with a different
        # internal order — which would leak into repr/DOT text
        for fingerprint in self._init_fps:
            node_id = graph.add_state(
                canonical_state(self._states[fingerprint]), initial=True)
            if node_id not in parents:
                parents[node_id] = None
                depth[node_id] = 0
                fp_to_id[fingerprint] = node_id
                order.append((node_id, fingerprint))
        cursor = 0
        while cursor < len(order):
            node_id, fingerprint = order[cursor]
            cursor += 1
            for label, succ_fp in self._succ.get(fingerprint, ()):
                succ_id = fp_to_id.get(succ_fp)
                is_new = succ_id is None
                if is_new:
                    succ_id = graph.add_state(
                        canonical_state(self._states[succ_fp]))
                    fp_to_id[succ_fp] = succ_id
                graph.add_edge(node_id, succ_id, ActionLabel(
                    label.name, dict(canonical_value(label.params))))
                if is_new:
                    parents[succ_id] = (node_id, label)
                    depth[succ_id] = depth[node_id] + 1
                    order.append((succ_id, succ_fp))
        return graph, parents, depth, fp_to_id

    def _finish(self, start: float, level: int, complete: bool) -> CheckResult:
        graph, parents, depth, fp_to_id = self._build_graph()
        violation: Optional[InvariantViolation] = None
        if self._violations:
            _, _, invariant, fingerprint = min(self._violations)
            node_id = fp_to_id[fingerprint]
            violation = InvariantViolation(
                invariant, graph.state_of(node_id),
                ModelChecker.trace_to(graph, parents, node_id))
            if TRACER.enabled:
                TRACER.emit("engine.violation", invariant=invariant,
                            state=node_id, violations=len(self._violations))
        elapsed = time.monotonic() - start
        diameter = max(depth.values()) if depth else 0
        if self.store:
            self._save_checkpoint(level, complete=complete, start=start)
        if TRACER.enabled:
            self._record_metrics(graph, diameter, elapsed, level)
        return CheckResult(
            graph=graph,
            states_explored=graph.num_states,
            edges_explored=graph.num_edges,
            elapsed_seconds=elapsed,
            complete=complete,
            diameter=diameter,
            violation=violation,
        )

    def _record_metrics(self, graph: StateGraph, diameter: int,
                        elapsed: float, level: int) -> None:
        METRICS.set_gauge("engine.workers", self.workers)
        METRICS.set_gauge("engine.levels", level)
        METRICS.set_gauge("engine.states", graph.num_states)
        METRICS.set_gauge("engine.edges", graph.num_edges)
        METRICS.set_gauge(
            "engine.states_per_sec",
            graph.num_states / elapsed if elapsed > 0
            else float(graph.num_states))
        if self._shard_sizes:
            sizes = [self._shard_sizes[index]
                     for index in sorted(self._shard_sizes)]
            mean = sum(sizes) / len(sizes)
            METRICS.set_gauge("engine.shard_max", max(sizes))
            METRICS.set_gauge(
                "engine.shard_balance",
                max(sizes) / mean if mean > 0 else 1.0)
        if self._busy and elapsed > 0:
            METRICS.set_gauge(
                "engine.worker_utilization",
                sum(self._busy.values()) / (elapsed * self._shard_count()))
        # mirror the serial checker's gauges so --metrics tables line up
        METRICS.set_gauge("checker.states", graph.num_states)
        METRICS.set_gauge("checker.edges", graph.num_edges)
        METRICS.set_gauge("checker.diameter", diameter)
        METRICS.set_gauge(
            "checker.states_per_sec",
            graph.num_states / elapsed if elapsed > 0
            else float(graph.num_states))

    # -- checkpointing -----------------------------------------------------
    def _save_checkpoint(self, level: int, complete: bool,
                         start: float) -> None:
        started = time.perf_counter()
        payload = {
            "spec": self.spec.name,
            "level": level,
            "workers": self.workers,
            "complete": complete,
            "max_states": self.max_states,
            "truncate": self.truncate,
            "states": [[fingerprint, encode_value(state._vars)]
                       for fingerprint, state in self._states.items()],
            "init": list(self._init_fps),
            "succ": [[src_fp,
                      [[label.name, encode_value(label.params), dst_fp]
                       for label, dst_fp in successors]]
                     for src_fp, successors in self._succ.items()],
            "frontier": list(self._frontier),
            "violations": [[lvl, invariant, fingerprint]
                           for lvl, _, invariant, fingerprint
                           in sorted(self._violations)],
            "stats": {
                "states": len(self._states),
                "edges": self._edge_total,
                "elapsed_seconds": time.monotonic() - start,
            },
        }
        self.store.save(payload)
        if TRACER.enabled:
            TRACER.emit("engine.checkpoint", level=level,
                        states=len(self._states),
                        seconds=time.perf_counter() - started,
                        path=self.store.path)

    def _restore(self, payload: Dict[str, Any]) -> int:
        for fingerprint, encoded in payload["states"]:
            state = State(dict(decode_value(encoded)))
            if fingerprint_state(state) != fingerprint:
                raise EngineError(
                    f"checkpoint integrity failure: stored fingerprint "
                    f"{fingerprint:#018x} does not match the re-encoded "
                    f"state (corrupt or hand-edited checkpoint?)")
            self._states[fingerprint] = canonical_state(state)
        self._succ = {
            src_fp: [(ActionLabel(name, dict(decode_value(params))), dst_fp)
                     for name, params, dst_fp in successors]
            for src_fp, successors in payload["succ"]
        }
        self._init_fps = list(payload["init"])
        self._frontier = list(payload["frontier"])
        self._violations = [
            (lvl, encode_canonical(self._states[fingerprint]._vars),
             invariant, fingerprint)
            for lvl, invariant, fingerprint in payload.get("violations", ())
        ]
        self._edge_total = sum(
            len(successors) for successors in self._succ.values())
        return int(payload["level"])


def explore(spec: Specification, **kwargs: Any) -> CheckResult:
    """Convenience wrapper: ``ShardedExplorer(spec, **kwargs).run()``."""
    return ShardedExplorer(spec, **kwargs).run()
