"""Checkpoint/resume storage for long exploration runs.

A :class:`CheckpointStore` persists the explorer's complete progress —
interned states, the per-source successor lists, the unexpanded
frontier and run metadata — after every BFS level, so that a long
``mocket check``/``testgen`` run killed at level *k* resumes from level
*k* instead of restarting.

Format (``mocket-checkpoint/1``), one directory per run:

* ``checkpoint.json`` — the latest snapshot, written atomically
  (temp file + ``os.replace``) so a crash mid-write never corrupts the
  resumable state.  Fields:

  - ``format``/``spec``/``level``/``complete`` — identity and progress,
  - ``states`` — ``[[fingerprint, encoded_state], ...]`` in discovery
    order, values encoded with the DOT tagged-literal encoding
    (:mod:`repro.tlaplus.dot`), so checkpoints are plain JSON and
    independent of Python pickling,
  - ``init`` — fingerprints of the initial states, in ``Init`` order,
  - ``succ`` — ``[[src_fp, [[action, encoded_params, dst_fp], ...]],
    ...]`` preserving the spec's ``enabled()`` emission order, which is
    what makes the rebuilt graph bit-identical to a serial run,
  - ``frontier`` — fingerprints absorbed but not yet expanded,
  - ``stats`` — states/edges/elapsed counters for progress reporting.

* ``history.jsonl`` — one appended line per saved level (level, states,
  frontier, wall seconds) for post-hoc inspection of exploration rate.

Fingerprints are redundant with the encoded states (they are recomputed
and verified on load) — they double as an integrity check on the file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = ["CheckpointError", "CheckpointStore"]

FORMAT = "mocket-checkpoint/1"


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, corrupt, or mismatched."""


class CheckpointStore:
    """Atomic JSON snapshots of exploration progress in one directory."""

    def __init__(self, directory: str):
        self.directory = str(directory)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, "checkpoint.json")

    @property
    def history_path(self) -> str:
        return os.path.join(self.directory, "history.jsonl")

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- writing -----------------------------------------------------------
    def save(self, payload: Dict[str, Any]) -> None:
        """Atomically replace the snapshot and append a history line."""
        payload = dict(payload)
        payload["format"] = FORMAT
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix="checkpoint-", suffix=".tmp", dir=self.directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        with open(self.history_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "level": payload.get("level"),
                "states": len(payload.get("states", ())),
                "frontier": len(payload.get("frontier", ())),
                "complete": payload.get("complete", False),
                "elapsed_seconds": payload.get("stats", {}).get(
                    "elapsed_seconds"),
            }) + "\n")

    # -- reading -----------------------------------------------------------
    def load(self, spec_name: Optional[str] = None) -> Dict[str, Any]:
        """Read and validate the latest snapshot.

        ``spec_name`` guards against resuming a checkpoint of a
        different model into the wrong run.
        """
        if not self.exists():
            raise CheckpointError(
                f"no checkpoint found at {self.path!r}; "
                f"run once with --checkpoint before --resume")
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {self.path!r}: {exc}") from exc
        if payload.get("format") != FORMAT:
            raise CheckpointError(
                f"{self.path!r} is not a {FORMAT} checkpoint "
                f"(format={payload.get('format')!r})")
        if spec_name is not None and payload.get("spec") != spec_name:
            raise CheckpointError(
                f"checkpoint {self.path!r} is for spec "
                f"{payload.get('spec')!r}, not {spec_name!r}")
        return payload

    def __repr__(self) -> str:
        return f"CheckpointStore({self.directory!r})"
