"""Stable 64-bit state fingerprints (TLC's FP64 analogue).

The serial checker deduplicates states with Python's built-in ``hash``,
which is randomized per process (``PYTHONHASHSEED``) and therefore
useless for identifying a state across worker processes or across a
checkpoint/restart boundary.  This module derives a stable 64-bit
fingerprint from a *canonical byte encoding* of the frozen value tree:

* equal values always produce identical bytes (and hence fingerprints),
  in every process and on every run,
* unordered containers (``FrozenDict``, ``frozenset``) are serialized
  with their elements sorted by encoded bytes, so dict/set iteration
  order never leaks into the encoding,
* the encoding is injective on the frozen value domain (every element
  is length-prefixed and type-tagged), so two states collide only if
  the 64-bit hash itself collides — which the engine detects by keeping
  the exact states alongside the fingerprints (see
  :class:`FingerprintCollision`).

Fingerprints partition the state space across workers:
``shard_of(fp, shards)`` is the hash partition used by the sharded
seen-sets of :mod:`repro.engine.explorer`.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Any

from ..tlaplus.state import ActionLabel, State
from ..tlaplus.values import FrozenDict

__all__ = [
    "FingerprintCollision",
    "canonical_state",
    "canonical_value",
    "encode_canonical",
    "fingerprint_label",
    "fingerprint_state",
    "fingerprint_value",
    "shard_of",
]

_PERSON = b"mocket-fp64"  # domain-separates these hashes from any other blake2b use


class FingerprintCollision(RuntimeError):
    """Two structurally different states produced the same fingerprint.

    With 64-bit fingerprints this is astronomically unlikely at the
    state-space sizes we explore; the sharded explorer still verifies
    exact state equality on every dedup hit so a collision surfaces as
    this error instead of a silently merged state graph.
    """


def encode_canonical(value: Any) -> bytes:
    """Canonical, process-independent byte encoding of a frozen value."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def _encode(value: Any, out: bytearray) -> None:
    # bool first: bool is a subclass of int but must not encode like one
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        data = str(value).encode("ascii")
        out += b"i%d:" % len(data)
        out += data
    elif isinstance(value, float):
        data = repr(value).encode("ascii")
        out += b"f%d:" % len(data)
        out += data
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += b"s%d:" % len(data)
        out += data
    elif isinstance(value, bytes):
        out += b"b%d:" % len(value)
        out += value
    elif isinstance(value, FrozenDict):
        # sort entries by encoded key bytes: canonical regardless of
        # insertion order, no reliance on cross-type comparability
        entries = sorted(
            (encode_canonical(key), encode_canonical(val))
            for key, val in value.items()
        )
        out += b"d%d:" % len(entries)
        for key_bytes, val_bytes in entries:
            out += key_bytes
            out += val_bytes
    elif isinstance(value, tuple):
        out += b"t%d:" % len(value)
        for item in value:
            _encode(item, out)
    elif isinstance(value, frozenset):
        elements = sorted(encode_canonical(item) for item in value)
        out += b"S%d:" % len(elements)
        for element in elements:
            out += element
    else:
        raise TypeError(
            f"cannot canonically encode value of type {type(value).__name__!r}; "
            f"states must contain only frozen values"
        )


def canonical_value(value: Any) -> Any:
    """Rebuild a frozen value with canonical container construction order.

    Two equal ``FrozenDict``s built from differently-ordered dicts are
    equal and hash alike, but *iterate* in their own insertion orders.
    Spec domains iterate state containers (e.g. ``in_flight`` walks the
    message bag), so the order a state object was built in leaks into
    ``Specification.enabled()`` emission order — and hence into graph
    numbering.  Rebuilding every container with entries inserted in
    canonical (encoded-byte) order makes iteration order a function of
    the state's *content*, which is what lets different worker counts
    produce bit-identical graphs.
    """
    if isinstance(value, FrozenDict):
        entries = sorted(
            ((encode_canonical(key), key, val) for key, val in value.items()),
            key=lambda item: item[0],
        )
        return FrozenDict({
            canonical_value(key): canonical_value(val)
            for _, key, val in entries
        })
    if isinstance(value, tuple):
        return tuple(canonical_value(item) for item in value)
    if isinstance(value, frozenset):
        # insertion order affects a set's internal layout (collision
        # probing) and hence its iteration/repr order; insert in
        # canonical order so equal sets are laid out identically
        elements = sorted(
            ((encode_canonical(item), item) for item in value),
            key=lambda pair: pair[0],
        )
        return frozenset(canonical_value(item) for _, item in elements)
    return value


def canonical_state(state: State) -> State:
    """An equal state whose containers iterate in canonical order."""
    return State({
        name: canonical_value(state._vars[name])
        for name in sorted(state._vars)
    })


def fingerprint_value(value: Any) -> int:
    """Stable unsigned 64-bit fingerprint of a frozen value."""
    digest = blake2b(encode_canonical(value), digest_size=8,
                     person=_PERSON).digest()
    return int.from_bytes(digest, "big")


def fingerprint_state(state: State) -> int:
    """Stable unsigned 64-bit fingerprint of a checker state."""
    return fingerprint_value(state._vars)


def fingerprint_label(label: ActionLabel) -> int:
    """Stable unsigned 64-bit fingerprint of an action label."""
    return fingerprint_value((label.name, label.params))


def shard_of(fingerprint: int, shards: int) -> int:
    """The hash partition owning ``fingerprint`` among ``shards`` workers."""
    return fingerprint % shards
