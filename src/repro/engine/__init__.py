"""repro.engine — parallel, resumable execution engine.

The engine owns *how* work runs; the checker/testgen/testbed layers own
*what* runs.  It provides:

* :mod:`~repro.engine.fingerprint` — stable 64-bit state fingerprints
  over a canonical byte encoding (process- and run-independent, unlike
  Python's randomized ``hash``),
* :mod:`~repro.engine.explorer` — a sharded, level-synchronous parallel
  BFS (:class:`ShardedExplorer`) whose replayed graph is bit-identical
  for any worker count, selected via ``check(spec, workers=N)``,
* :mod:`~repro.engine.checkpoint` — per-level snapshot/resume storage
  (:class:`CheckpointStore`) for long checking runs,
* :mod:`~repro.engine.canon` — deterministic canonical renumbering of
  state graphs, the oracle for "same exploration, different order",
* :mod:`~repro.engine.executor` — parallel ``mocket test`` suite
  execution with per-case process isolation and deterministic merging.

See ``docs/ENGINE.md`` for the architecture.
"""

from .canon import canonical_signature, canonicalize, graphs_equivalent
from .checkpoint import CheckpointError, CheckpointStore
from .executor import run_suite_parallel
from .explorer import (
    EngineError,
    EngineFallbackWarning,
    ShardedExplorer,
    explore,
    fork_available,
)
from .fingerprint import (
    FingerprintCollision,
    canonical_state,
    canonical_value,
    encode_canonical,
    fingerprint_label,
    fingerprint_state,
    fingerprint_value,
    shard_of,
)

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "EngineError",
    "EngineFallbackWarning",
    "FingerprintCollision",
    "ShardedExplorer",
    "canonical_signature",
    "canonical_state",
    "canonical_value",
    "canonicalize",
    "encode_canonical",
    "explore",
    "fingerprint_label",
    "fingerprint_state",
    "fingerprint_value",
    "fork_available",
    "graphs_equivalent",
    "run_suite_parallel",
    "shard_of",
]
