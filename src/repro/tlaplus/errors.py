"""Error types raised by the TLA+-style substrate."""

from __future__ import annotations

__all__ = [
    "TlaError",
    "SpecError",
    "ActionError",
    "InvariantViolation",
    "CheckingBudgetExceeded",
    "DotParseError",
]


class TlaError(Exception):
    """Base class for all substrate errors."""


class SpecError(TlaError):
    """A specification is malformed (duplicate names, unknown variables, ...)."""


class ActionError(TlaError):
    """An action produced an invalid next state (unknown variable, unfrozen value)."""


class InvariantViolation(TlaError):
    """An invariant failed during model checking.

    Carries the violating state and the trace from an initial state, like
    TLC's counterexample output.
    """

    def __init__(self, invariant_name, state, trace):
        self.invariant_name = invariant_name
        self.state = state
        self.trace = list(trace)
        super().__init__(
            f"invariant {invariant_name!r} violated after {len(self.trace)} steps"
        )


class CheckingBudgetExceeded(TlaError):
    """Model checking hit its state or edge budget before exhausting the space."""

    def __init__(self, states_explored, limit):
        self.states_explored = states_explored
        self.limit = limit
        super().__init__(
            f"state budget exceeded: explored {states_explored} states (limit {limit})"
        )


class DotParseError(TlaError):
    """A DOT state-graph dump could not be parsed."""
