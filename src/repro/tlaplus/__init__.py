"""TLA+-style specification substrate: DSL, model checker, state graphs.

This package replaces the external TLC model checker the paper relies
on.  Specifications are written in a Python DSL mirroring TLA+'s
Init/Next structure; an explicit-state BFS checker enumerates the
reachable state space, checks invariants and produces the state-space
graph (with DOT round-trip) that the Mocket core consumes.
"""

from .checker import (
    CheckResult,
    ModelChecker,
    SimulationResult,
    TruncatedExplorationWarning,
    check,
    simulate,
)
from .dot import parse_dot, read_dot, to_dot, write_dot
from .errors import (
    ActionError,
    CheckingBudgetExceeded,
    DotParseError,
    InvariantViolation,
    SpecError,
    TlaError,
)
from .graph import Edge, StateGraph
from .spec import (
    ActionDecl,
    ActionKind,
    Specification,
    VarKind,
    VariableDecl,
    from_constant,
    in_flight,
)
from .state import ActionLabel, State
from .trace import diff_states, format_trace, format_violation
from .values import (
    EMPTY_BAG,
    FrozenDict,
    bag_add,
    bag_contains,
    bag_count,
    bag_from_iterable,
    bag_items,
    bag_remove,
    bag_size,
    freeze,
    is_bag,
    thaw,
)

__all__ = [
    "ActionDecl",
    "ActionError",
    "ActionKind",
    "ActionLabel",
    "CheckResult",
    "CheckingBudgetExceeded",
    "DotParseError",
    "EMPTY_BAG",
    "Edge",
    "FrozenDict",
    "InvariantViolation",
    "ModelChecker",
    "SimulationResult",
    "SpecError",
    "Specification",
    "State",
    "StateGraph",
    "TlaError",
    "TruncatedExplorationWarning",
    "VarKind",
    "VariableDecl",
    "bag_add",
    "bag_contains",
    "bag_count",
    "bag_from_iterable",
    "bag_items",
    "bag_remove",
    "bag_size",
    "check",
    "diff_states",
    "format_trace",
    "format_violation",
    "freeze",
    "from_constant",
    "in_flight",
    "is_bag",
    "parse_dot",
    "read_dot",
    "simulate",
    "thaw",
    "to_dot",
    "write_dot",
]
