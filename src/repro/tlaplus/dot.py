"""GraphViz DOT export/import for state-space graphs.

TLC can dump its state space as a DOT file, which Mocket's test-case
generator then parses (Section 4.2).  We reproduce that interface: the
checker's :class:`~repro.tlaplus.graph.StateGraph` round-trips through a
DOT file whose nodes carry the full encoded state and whose edges carry
the action label, so test generation can run either from an in-memory
graph or from a dump on disk.

Values are encoded as tagged Python literals so that ``ast.literal_eval``
can parse them back losslessly:

* ``FrozenDict`` → ``("$dict", ((k, v), ...))`` with sorted items,
* ``frozenset`` → ``("$set", (v, ...))`` sorted,
* tuples → ``("$tuple", (v, ...))``,
* scalars stay plain literals.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Dict, List, TextIO

from .errors import DotParseError
from .graph import StateGraph
from .state import ActionLabel, State
from .values import FrozenDict

__all__ = ["encode_value", "decode_value", "to_dot", "write_dot", "parse_dot", "read_dot"]


def encode_value(value: Any) -> str:
    """Encode a frozen value as a tagged Python literal string."""
    return repr(_tag(value))


def _tag(value: Any) -> Any:
    if isinstance(value, FrozenDict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return ("$dict", tuple((_tag(k), _tag(v)) for k, v in items))
    if isinstance(value, tuple):
        return ("$tuple", tuple(_tag(v) for v in value))
    if isinstance(value, frozenset):
        return ("$set", tuple(sorted((_tag(v) for v in value), key=repr)))
    return value


def decode_value(text: str) -> Any:
    """Parse a tagged literal string back into a frozen value."""
    try:
        literal = ast.literal_eval(text)
    except (ValueError, SyntaxError) as exc:
        raise DotParseError(f"bad encoded value {text!r}: {exc}") from exc
    return _untag(literal)


def _untag(literal: Any) -> Any:
    if isinstance(literal, tuple):
        if len(literal) == 2 and literal[0] == "$dict":
            return FrozenDict({_untag(k): _untag(v) for k, v in literal[1]})
        if len(literal) == 2 and literal[0] == "$set":
            return frozenset(_untag(v) for v in literal[1])
        if len(literal) == 2 and literal[0] == "$tuple":
            return tuple(_untag(v) for v in literal[1])
        return tuple(_untag(v) for v in literal)
    return literal


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _dot_unescape(text: str) -> str:
    return text.replace('\\"', '"').replace("\\\\", "\\")


def to_dot(graph: StateGraph) -> str:
    """Render ``graph`` as DOT text (TLC ``-dump dot`` analogue)."""
    lines = [f'digraph "{_dot_escape(graph.spec_name or "state_space")}" {{']
    initial = set(graph.initial_ids)
    for node_id, state in graph.states():
        encoded = encode_value(state._vars)  # FrozenDict of variables
        shape = ' shape=doublecircle' if node_id in initial else ""
        pretty = " /\\ ".join(f"{k}={v!r}" for k, v in state.items())
        lines.append(
            f'  {node_id} [label="{_dot_escape(pretty)}" state="{_dot_escape(encoded)}"'
            f'{shape}];'
        )
    for edge in graph.edges():
        params = encode_value(edge.label.params)
        lines.append(
            f'  {edge.src} -> {edge.dst} [label="{_dot_escape(edge.label.name)}"'
            f' params="{_dot_escape(params)}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(graph: StateGraph, path_or_file) -> None:
    """Write ``graph`` to a DOT file (path string or open text file)."""
    text = to_dot(graph)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)


_NODE_RE = re.compile(
    r'^\s*(\d+)\s*\[label="(?P<label>(?:[^"\\]|\\.)*)"'
    r'\s+state="(?P<state>(?:[^"\\]|\\.)*)"(?P<rest>[^\]]*)\];\s*$'
)
_EDGE_RE = re.compile(
    r'^\s*(\d+)\s*->\s*(\d+)\s*\[label="(?P<label>(?:[^"\\]|\\.)*)"'
    r'\s+params="(?P<params>(?:[^"\\]|\\.)*)"\s*\];\s*$'
)
_HEADER_RE = re.compile(r'^\s*digraph\s+"(?P<name>(?:[^"\\]|\\.)*)"\s*\{\s*$')


def parse_dot(text: str) -> StateGraph:
    """Parse DOT text produced by :func:`to_dot` back into a StateGraph."""
    lines = text.splitlines()
    if not lines:
        raise DotParseError("empty DOT input")
    header = _HEADER_RE.match(lines[0])
    if header is None:
        raise DotParseError(f"bad DOT header: {lines[0]!r}")
    graph = StateGraph(_dot_unescape(header.group("name")))

    nodes: Dict[int, State] = {}
    initial: List[int] = []
    edges: List[tuple] = []
    for line in lines[1:]:
        stripped = line.strip()
        if not stripped or stripped == "}":
            continue
        node_match = _NODE_RE.match(line)
        if node_match:
            node_id = int(node_match.group(1))
            encoded = _dot_unescape(node_match.group("state"))
            variables = decode_value(encoded)
            nodes[node_id] = State(dict(variables))
            if "doublecircle" in node_match.group("rest"):
                initial.append(node_id)
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            src, dst = int(edge_match.group(1)), int(edge_match.group(2))
            name = _dot_unescape(edge_match.group("label"))
            params = decode_value(_dot_unescape(edge_match.group("params")))
            edges.append((src, dst, ActionLabel(name, dict(params))))
            continue
        raise DotParseError(f"unparseable DOT line: {line!r}")

    # Re-intern in id order so ids are preserved.
    for node_id in sorted(nodes):
        assigned = graph.add_state(nodes[node_id], initial=node_id in initial)
        if assigned != node_id:
            raise DotParseError(
                f"non-dense or duplicated node ids (expected {node_id}, got {assigned})"
            )
    for src, dst, label in edges:
        if src not in nodes or dst not in nodes:
            raise DotParseError(f"edge references unknown node: {src} -> {dst}")
        graph.add_edge(src, dst, label)
    return graph


def read_dot(path_or_file) -> StateGraph:
    """Read a DOT file (path string or open text file) into a StateGraph."""
    if hasattr(path_or_file, "read"):
        return parse_dot(path_or_file.read())
    with open(path_or_file, "r", encoding="utf-8") as handle:
        return parse_dot(handle.read())
