"""States and action labels for the model checker.

A :class:`State` is an immutable assignment of values to the spec's
variables — exactly what one node of TLC's state-space graph holds.  An
:class:`ActionLabel` is the label on an edge: the action name plus the
parameter binding that fired it (e.g. ``RequestVote(i=n1, j=n2)``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Tuple

from .values import FrozenDict, freeze, thaw

__all__ = ["State", "ActionLabel"]


class State:
    """An immutable variable assignment with attribute-style access.

    Actions read variables as attributes (``state.currentTerm``) to stay
    close to the TLA+ source they transcribe.  States hash and compare
    structurally, which is what lets the checker deduplicate them.
    """

    __slots__ = ("_vars", "_hash")

    def __init__(self, variables: Mapping[str, Any]):
        frozen = FrozenDict({name: freeze(value) for name, value in variables.items()})
        object.__setattr__(self, "_vars", frozen)
        object.__setattr__(self, "_hash", None)

    # -- access ---------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        try:
            return self._vars[name]
        except KeyError:
            raise AttributeError(f"state has no variable {name!r}") from None

    def __getitem__(self, name: str) -> Any:
        return self._vars[name]

    def get(self, name: str, default: Any = None) -> Any:
        return self._vars.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def variables(self) -> Tuple[str, ...]:
        """Variable names, sorted."""
        return tuple(sorted(self._vars))

    def items(self) -> Iterator[Tuple[str, Any]]:
        for name in sorted(self._vars):
            yield name, self._vars[name]

    def as_dict(self) -> Dict[str, Any]:
        """A plain (thawed) dict copy, convenient for assertions and dumps."""
        return {name: thaw(value) for name, value in self._vars.items()}

    # -- functional update ------------------------------------------------------
    def with_updates(self, updates: Mapping[str, Any]) -> "State":
        """Return the successor state; variables absent from ``updates`` are UNCHANGED."""
        if not updates:
            return self
        merged = dict(self._vars)
        for name, value in updates.items():
            if name not in merged:
                raise KeyError(f"action assigned unknown variable {name!r}")
            merged[name] = freeze(value)
        return State(merged)

    # -- identity -----------------------------------------------------------------
    def __reduce__(self):
        # default slots pickling recurses through __getattr__; rebuild from
        # the variable mapping instead (freeze passes frozen values through)
        return (State, (dict(self._vars),))

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(self._vars)
            object.__setattr__(self, "_hash", h)
        return h

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self._vars == other._vars

    def __repr__(self) -> str:
        body = " /\\ ".join(f"{name}={value!r}" for name, value in self.items())
        return f"State({body})"

    def fingerprint(self) -> int:
        """A stable structural fingerprint (TLC's state fingerprint analogue)."""
        return hash(self._vars)


class ActionLabel:
    """The label of a state-graph edge: action name + parameter binding."""

    __slots__ = ("name", "params", "_hash")

    def __init__(self, name: str, params: Mapping[str, Any] = ()):  # type: ignore[assignment]
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", FrozenDict(
            {k: freeze(v) for k, v in dict(params).items()}
        ))
        object.__setattr__(self, "_hash", hash((name, self.params)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ActionLabel is immutable")

    def __reduce__(self):
        # slots pickling would setattr on an immutable object; rebuild instead
        return (ActionLabel, (self.name, dict(self.params)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ActionLabel):
            return NotImplemented
        return self.name == other.name and self.params == other.params

    def __repr__(self) -> str:
        if not self.params:
            return f"{self.name}()"
        body = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items(), key=lambda kv: str(kv[0])))
        return f"{self.name}({body})"
