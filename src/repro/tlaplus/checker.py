"""Explicit-state model checker (the TLC substitute).

Breadth-first enumeration of the reachable state space of a
:class:`~repro.tlaplus.spec.Specification`:

* start from every ``Init`` state,
* for each frontier state apply every enabled action binding,
* intern successors (deduplicating by structural equality),
* check invariants on every new state,
* record every transition as a labelled edge.

The result is a :class:`~repro.tlaplus.graph.StateGraph` plus checking
statistics — the same artifact TLC dumps to DOT, which is all Mocket
needs downstream.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from typing import Dict, List, Optional

from ..obs import METRICS, TRACER
from .errors import CheckingBudgetExceeded, InvariantViolation
from .graph import StateGraph
from .spec import Specification
from .state import ActionLabel, State

__all__ = ["CheckResult", "ModelChecker", "TruncatedExplorationWarning", "check"]


class TruncatedExplorationWarning(UserWarning):
    """A query only meaningful on a complete exploration ran on a
    truncated one (e.g. :meth:`CheckResult.deadlocks` after hitting the
    state budget)."""


class CheckResult:
    """Outcome of a model-checking run."""

    def __init__(
        self,
        graph: StateGraph,
        states_explored: int,
        edges_explored: int,
        elapsed_seconds: float,
        complete: bool,
        diameter: int,
        violation: Optional[InvariantViolation] = None,
        refused_successors: int = 0,
    ):
        self.graph = graph
        self.states_explored = states_explored
        self.edges_explored = edges_explored
        self.elapsed_seconds = elapsed_seconds
        self.complete = complete          # True iff the full space was exhausted
        self.diameter = diameter          # longest BFS distance from Init (TLC's "depth")
        self.violation = violation
        # successors refused by the truncate=True state budget; they are
        # neither states nor edges of the graph and are not counted as such
        self.refused_successors = refused_successors

    @property
    def ok(self) -> bool:
        return self.violation is None

    def deadlocks(self, strict: bool = False) -> List[int]:
        """States with no enabled action (TLC's deadlock check).

        Only meaningful on a complete exploration: a truncated run
        contains frontier states whose successors were never expanded,
        which look terminal without being deadlocks.  Calling this on a
        truncated result warns (:class:`TruncatedExplorationWarning`) —
        or raises ``ValueError`` with ``strict=True`` — instead of
        silently returning misleading states.
        """
        if not self.complete:
            message = (
                f"deadlocks() on a truncated exploration of "
                f"{self.graph.spec_name!r}: unexpanded frontier states "
                f"look terminal; re-check with a larger state budget"
            )
            if strict:
                raise ValueError(message)
            warnings.warn(message, TruncatedExplorationWarning, stacklevel=2)
        return self.graph.terminal_ids()

    def summary(self) -> str:
        status = "OK" if self.ok else f"VIOLATION({self.violation.invariant_name})"
        completeness = "complete" if self.complete else "truncated"
        return (
            f"{self.graph.spec_name}: {self.states_explored} states, "
            f"{self.edges_explored} edges, diameter {self.diameter}, "
            f"{self.elapsed_seconds:.3f}s, {completeness}, {status}"
        )


class ModelChecker:
    """BFS explicit-state checker with state/edge budgets.

    ``max_states`` bounds exploration (raising by default, or truncating
    when ``truncate=True``) so that unboundedly growing specs can still
    be used to produce a finite graph for test generation — the paper's
    action counters serve the same purpose inside the spec itself.
    """

    def __init__(
        self,
        spec: Specification,
        max_states: Optional[int] = None,
        truncate: bool = False,
        stop_on_violation: bool = True,
    ):
        self.spec = spec
        self.max_states = max_states
        self.truncate = truncate
        self.stop_on_violation = stop_on_violation

    def run(self) -> CheckResult:
        with TRACER.span("checker.run", spec=self.spec.name,
                         max_states=self.max_states) as checker_span:
            result = self._run()
            checker_span.add(states=result.states_explored,
                             edges=result.edges_explored,
                             complete=result.complete,
                             ok=result.ok,
                             refused=result.refused_successors)
            return result

    def _run(self) -> CheckResult:
        start = time.monotonic()
        # hot path: sample the flag once; a run is all-or-nothing traced
        tracing = TRACER.enabled
        level = 0
        graph = StateGraph(self.spec.name)
        # parent pointers for counterexample traces: node -> (pred, label)
        parents: Dict[int, Optional[tuple]] = {}
        depth: Dict[int, int] = {}
        frontier = deque()
        violation: Optional[InvariantViolation] = None
        complete = True
        refused = 0

        for state in self.spec.initial_states():
            node_id = graph.add_state(state, initial=True)
            if node_id not in parents:
                parents[node_id] = None
                depth[node_id] = 0
                frontier.append(node_id)
                violation = self._check_state(graph, parents, node_id)
                if violation is not None and self.stop_on_violation:
                    return self._finish(graph, start, complete=False, depth=depth,
                                        violation=violation, refused=refused)

        edges_explored = 0
        while frontier:
            node_id = frontier.popleft()
            if tracing and depth[node_id] > level:
                # BFS pops in nondecreasing depth order: a new level starts
                level = depth[node_id]
                TRACER.emit("checker.bfs_level", level=level,
                            frontier=len(frontier) + 1,
                            states=graph.num_states, edges=edges_explored)
                METRICS.gauge("checker.frontier_peak").max(len(frontier) + 1)
            state = graph.state_of(node_id)
            for label, successor in self.spec.enabled(state):
                succ_id = graph.id_of(successor)
                is_new = succ_id is None
                if is_new:
                    if self.max_states is not None and graph.num_states >= self.max_states:
                        if self.truncate:
                            # the refused successor is not part of the graph:
                            # do not count it as an explored edge either
                            if complete:
                                TRACER.emit("checker.truncated",
                                            states=graph.num_states,
                                            max_states=self.max_states,
                                            level=depth[node_id] + 1)
                            complete = False
                            refused += 1
                            continue
                        raise CheckingBudgetExceeded(graph.num_states, self.max_states)
                    succ_id = graph.add_state(successor)
                edges_explored += 1
                graph.add_edge(node_id, succ_id, label)
                if is_new:
                    parents[succ_id] = (node_id, label)
                    depth[succ_id] = depth[node_id] + 1
                    frontier.append(succ_id)
                    violation = self._check_state(graph, parents, succ_id)
                    if violation is not None and self.stop_on_violation:
                        return self._finish(graph, start, complete=False, depth=depth,
                                            violation=violation, refused=refused)

        return self._finish(graph, start, complete=complete, depth=depth,
                            violation=violation, refused=refused)

    # -- helpers -------------------------------------------------------------
    def _check_state(self, graph, parents, node_id) -> Optional[InvariantViolation]:
        inv_name = self.spec.check_invariants(graph.state_of(node_id))
        if inv_name is None:
            return None
        return InvariantViolation(
            inv_name, graph.state_of(node_id), self.trace_to(graph, parents, node_id)
        )

    @staticmethod
    def trace_to(graph: StateGraph, parents: Dict[int, Optional[tuple]], node_id: int):
        """Reconstruct the counterexample trace ``[(label|None, state), ...]``."""
        steps: List[tuple] = []
        current: Optional[int] = node_id
        while current is not None:
            parent = parents[current]
            if parent is None:
                steps.append((None, graph.state_of(current)))
                current = None
            else:
                pred, label = parent
                steps.append((label, graph.state_of(current)))
                current = pred
        steps.reverse()
        return steps

    def _finish(self, graph, start, complete, depth, violation,
                refused: int = 0) -> CheckResult:
        elapsed = time.monotonic() - start
        diameter = max(depth.values()) if depth else 0
        if TRACER.enabled:
            METRICS.set_gauge("checker.states", graph.num_states)
            METRICS.set_gauge("checker.edges", graph.num_edges)
            METRICS.set_gauge("checker.diameter", diameter)
            METRICS.set_gauge(
                "checker.states_per_sec",
                graph.num_states / elapsed if elapsed > 0 else float(graph.num_states),
            )
            if refused:
                METRICS.set_gauge("checker.refused_successors", refused)
        return CheckResult(
            graph=graph,
            states_explored=graph.num_states,
            edges_explored=graph.num_edges,
            elapsed_seconds=elapsed,
            complete=complete,
            diameter=diameter,
            violation=violation,
            refused_successors=refused,
        )


def check(
    spec: Specification,
    max_states: Optional[int] = None,
    truncate: bool = False,
    stop_on_violation: bool = True,
    workers: int = 1,
    checkpoint=None,
    resume: bool = False,
) -> CheckResult:
    """Convenience wrapper: model-check ``spec`` and return the result.

    ``workers > 1`` runs the sharded parallel explorer from
    :mod:`repro.engine`; ``checkpoint`` (a directory path or
    :class:`~repro.engine.CheckpointStore`) snapshots progress per BFS
    level so an interrupted run can continue with ``resume=True``.
    ``workers=1`` without a checkpoint is the classic serial checker.
    """
    if workers != 1 or checkpoint is not None or resume:
        from ..engine import ShardedExplorer  # lazy: engine builds on this module

        return ShardedExplorer(
            spec,
            workers=workers,
            max_states=max_states,
            truncate=truncate,
            stop_on_violation=stop_on_violation,
            checkpoint=checkpoint,
            resume=resume,
        ).run()
    return ModelChecker(
        spec,
        max_states=max_states,
        truncate=truncate,
        stop_on_violation=stop_on_violation,
    ).run()


class SimulationResult:
    """Outcome of a simulation run (TLC's ``-simulate`` analogue)."""

    def __init__(self, traces, violation: Optional[InvariantViolation],
                 states_sampled: int):
        self.traces = traces              # list of [(label|None, state), ...]
        self.violation = violation
        self.states_sampled = states_sampled

    @property
    def ok(self) -> bool:
        return self.violation is None

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"VIOLATION({self.violation.invariant_name})"
        return (f"SimulationResult({len(self.traces)} traces, "
                f"{self.states_sampled} states, {status})")


def simulate(
    spec: Specification,
    traces: int = 10,
    depth: int = 50,
    seed: int = 0,
) -> SimulationResult:
    """Random-walk simulation: TLC's ``-simulate`` mode.

    Samples ``traces`` behaviours of at most ``depth`` steps each,
    checking invariants along the way.  Linear cost where exhaustive
    checking is exponential — the standard tool for models whose full
    space is out of reach.  Deterministic given ``seed``.
    """
    import random

    rng = random.Random(seed)
    initial_states = spec.initial_states()
    collected = []
    states_sampled = 0
    for _ in range(traces):
        state = rng.choice(initial_states)
        trace = [(None, state)]
        states_sampled += 1
        inv = spec.check_invariants(state)
        if inv is not None:
            violation = InvariantViolation(inv, state, trace)
            collected.append(trace)
            return SimulationResult(collected, violation, states_sampled)
        for _ in range(depth):
            transitions = list(spec.enabled(state))
            if not transitions:
                break
            label, state = rng.choice(transitions)
            trace.append((label, state))
            states_sampled += 1
            inv = spec.check_invariants(state)
            if inv is not None:
                collected.append(trace)
                return SimulationResult(
                    collected, InvariantViolation(inv, state, trace),
                    states_sampled,
                )
        collected.append(trace)
    return SimulationResult(collected, None, states_sampled)
