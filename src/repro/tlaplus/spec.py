"""The TLA+-style specification DSL.

A :class:`Specification` plays the role of a TLA+ module instantiated
with concrete constants (a TLC "model"):

* *constants* are fixed values assigned before checking (``CONSTANTS``),
* *variables* are declared with a category from Section 4.1.1 of the
  paper (state-related, message-related, action counter, auxiliary),
* *actions* are pure functions ``fn(state, const, **params)`` returning
  either ``None`` (the action is not enabled for this binding) or a dict
  of variable updates (variables not mentioned are ``UNCHANGED``),
* *parameter domains* encode the existential quantifiers of ``Next``
  (``∃ i ∈ Server : Timeout(i)``); a domain is a static iterable or a
  callable ``(state, const) -> iterable`` for domains that depend on the
  current state (e.g. the in-flight message bag),
* *invariants* are predicates checked on every reached state.

Example::

    spec = Specification("counter", constants={"Limit": 3})
    spec.add_variable("n", kind=VarKind.STATE)

    @spec.init
    def init(const):
        return {"n": 0}

    @spec.action()
    def Incr(state, const):
        if state.n >= const["Limit"]:
            return None
        return {"n": state.n + 1}
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from .errors import ActionError, SpecError
from .state import ActionLabel, State
from .values import freeze

__all__ = [
    "VarKind",
    "ActionKind",
    "VariableDecl",
    "ActionDecl",
    "Specification",
    "from_constant",
    "in_flight",
]


class VarKind(enum.Enum):
    """Variable categories from Section 4.1.1 of the paper."""

    STATE = "state"            # mapped to implementation fields, checked
    MESSAGE = "message"        # checked against the testbed's message sets
    COUNTER = "counter"        # restricts model checking only; never mapped
    AUXILIARY = "auxiliary"    # spec-internal bookkeeping; never mapped


class ActionKind(enum.Enum):
    """Action categories from Section 4.1.2 of the paper."""

    SINGLE_NODE = "single_node"
    MESSAGE_SEND = "message_send"
    MESSAGE_RECEIVE = "message_receive"
    FAULT = "fault"
    USER_REQUEST = "user_request"


Domain = Callable[[State, Mapping[str, Any]], Iterable[Any]]


def from_constant(name: str) -> Domain:
    """Domain helper: quantify over the constant ``name`` (e.g. ``Server``)."""

    def domain(state: State, const: Mapping[str, Any]) -> Iterable[Any]:
        return const[name]

    return domain


def in_flight(message_var: str) -> Domain:
    """Domain helper: quantify over the distinct messages in a message bag.

    Matches TLC's ``∃ m ∈ DOMAIN messages``: a message duplicated in the
    bag yields a single binding (handling it once per enabled edge).
    """

    def domain(state: State, const: Mapping[str, Any]) -> Iterable[Any]:
        return list(state[message_var].keys())

    return domain


class VariableDecl:
    """Declaration of one spec variable."""

    __slots__ = ("name", "kind", "per_node", "doc")

    def __init__(self, name: str, kind: VarKind, per_node: bool, doc: str):
        self.name = name
        self.kind = kind
        self.per_node = per_node
        self.doc = doc

    def __repr__(self) -> str:
        return f"VariableDecl({self.name!r}, {self.kind.value}, per_node={self.per_node})"


class ActionDecl:
    """Declaration of one spec action (a disjunct of ``Next``)."""

    __slots__ = ("name", "fn", "params", "kind", "msg_param", "message_var",
                 "doc", "file", "line")

    def __init__(
        self,
        name: str,
        fn: Callable[..., Optional[Mapping[str, Any]]],
        params: Mapping[str, Any],
        kind: ActionKind,
        msg_param: Optional[str],
        message_var: Optional[str],
        doc: str,
    ):
        self.name = name
        self.fn = fn
        self.params = dict(params)
        self.kind = kind
        self.msg_param = msg_param
        self.message_var = message_var
        self.doc = doc
        # source anchor for static analysis (repro.analysis.effects) and
        # lint findings; None for callables without a code object
        code = getattr(fn, "__code__", None)
        self.file: Optional[str] = code.co_filename if code else None
        self.line: Optional[int] = code.co_firstlineno if code else None

    def domains(self, state: State, const: Mapping[str, Any]) -> List[Tuple[str, List[Any]]]:
        """Evaluate every parameter domain against the current state."""
        evaluated = []
        for pname, domain in self.params.items():
            values = domain(state, const) if callable(domain) else domain
            evaluated.append((pname, list(values)))
        return evaluated

    def bindings(self, state: State, const: Mapping[str, Any]) -> Iterator[Dict[str, Any]]:
        """Yield every parameter binding (cartesian product of the domains)."""
        evaluated = self.domains(state, const)
        if not evaluated:
            yield {}
            return
        names = [pname for pname, _ in evaluated]
        for combo in itertools.product(*(values for _, values in evaluated)):
            yield dict(zip(names, combo))

    def __repr__(self) -> str:
        return f"ActionDecl({self.name!r}, kind={self.kind.value})"


class Specification:
    """A TLA+ module instantiated with concrete constants."""

    def __init__(self, name: str, constants: Optional[Mapping[str, Any]] = None):
        self.name = name
        self.constants: Dict[str, Any] = {
            k: freeze(v) for k, v in dict(constants or {}).items()
        }
        self.variables: Dict[str, VariableDecl] = {}
        self.actions: Dict[str, ActionDecl] = {}
        self.invariants: Dict[str, Callable[[State, Mapping[str, Any]], bool]] = {}
        self._init_fn: Optional[Callable[..., Any]] = None

    # -- declaration -----------------------------------------------------------
    def add_variable(
        self,
        name: str,
        kind: VarKind = VarKind.STATE,
        per_node: bool = False,
        doc: str = "",
    ) -> VariableDecl:
        """Declare a variable.  ``per_node=True`` marks a function over nodes
        (``[s \\in Server |-> ...]``) whose runtime value is assembled from
        per-node snapshots by the state checker."""
        if name in self.variables:
            raise SpecError(f"duplicate variable {name!r} in spec {self.name!r}")
        decl = VariableDecl(name, kind, per_node, doc)
        self.variables[name] = decl
        return decl

    def init(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Register the ``Init`` predicate.

        ``fn(const)`` must return a dict assigning every declared variable,
        or a list of such dicts when ``Init`` is a disjunction.
        """
        if self._init_fn is not None:
            raise SpecError(f"spec {self.name!r} already has an Init")
        self._init_fn = fn
        return fn

    def action(
        self,
        name: Optional[str] = None,
        params: Optional[Mapping[str, Any]] = None,
        kind: ActionKind = ActionKind.SINGLE_NODE,
        msg_param: Optional[str] = None,
        message_var: Optional[str] = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering an action (one disjunct of ``Next``).

        ``msg_param`` names the parameter bound to the consumed message for
        ``MESSAGE_RECEIVE`` actions; ``message_var`` names the bag variable
        the message travels through.
        """

        def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
            action_name = name or fn.__name__
            if action_name in self.actions:
                raise SpecError(f"duplicate action {action_name!r} in spec {self.name!r}")
            if msg_param is not None and msg_param not in (params or {}):
                raise SpecError(
                    f"action {action_name!r}: msg_param {msg_param!r} is not a parameter"
                )
            if message_var is not None and message_var not in self.variables:
                raise SpecError(
                    f"action {action_name!r}: unknown message variable {message_var!r}"
                )
            self.actions[action_name] = ActionDecl(
                name=action_name,
                fn=fn,
                params=params or {},
                kind=kind,
                msg_param=msg_param,
                message_var=message_var,
                doc=fn.__doc__ or "",
            )
            return fn

        return decorator

    def invariant(
        self, name: Optional[str] = None
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering an invariant predicate ``fn(state, const)``."""

        def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
            inv_name = name or fn.__name__
            if inv_name in self.invariants:
                raise SpecError(f"duplicate invariant {inv_name!r} in spec {self.name!r}")
            self.invariants[inv_name] = fn
            return fn

        return decorator

    # -- semantics --------------------------------------------------------------
    def initial_states(self) -> List[State]:
        """Evaluate ``Init`` and validate that every variable is assigned."""
        if self._init_fn is None:
            raise SpecError(f"spec {self.name!r} has no Init")
        result = self._init_fn(self.constants)
        assignments = result if isinstance(result, list) else [result]
        states = []
        for assignment in assignments:
            missing = set(self.variables) - set(assignment)
            extra = set(assignment) - set(self.variables)
            if missing:
                raise SpecError(f"Init leaves variables unassigned: {sorted(missing)}")
            if extra:
                raise SpecError(f"Init assigns undeclared variables: {sorted(extra)}")
            states.append(State(assignment))
        return states

    def apply(self, decl: ActionDecl, state: State, binding: Mapping[str, Any]) -> Optional[State]:
        """Apply one action binding to ``state``; None when not enabled."""
        try:
            updates = decl.fn(state, self.constants, **binding)
        except Exception as exc:  # surface the action name in the traceback
            raise ActionError(f"action {decl.name!r} raised {exc!r} on {state!r}") from exc
        if updates is None:
            return None
        extra = set(updates) - set(self.variables)
        if extra:
            raise ActionError(
                f"action {decl.name!r} assigned undeclared variables: {sorted(extra)}"
            )
        return state.with_updates(updates)

    def enabled(self, state: State) -> Iterator[Tuple[ActionLabel, State]]:
        """Yield every enabled ``(label, successor)`` pair from ``state``.

        This is the ``Next`` relation TLC iterates: all actions, all
        parameter bindings, skipping bindings whose precondition fails.
        """
        for decl in self.actions.values():
            for binding in decl.bindings(state, self.constants):
                successor = self.apply(decl, state, binding)
                if successor is not None:
                    yield ActionLabel(decl.name, binding), successor

    def check_invariants(self, state: State) -> Optional[str]:
        """Return the name of the first violated invariant, or None."""
        for inv_name, fn in self.invariants.items():
            if not fn(state, self.constants):
                return inv_name
        return None

    # -- introspection -------------------------------------------------------------
    def variables_of_kind(self, kind: VarKind) -> List[str]:
        return [name for name, decl in self.variables.items() if decl.kind is kind]

    def actions_of_kind(self, kind: ActionKind) -> List[str]:
        return [name for name, decl in self.actions.items() if decl.kind is kind]

    def __repr__(self) -> str:
        return (
            f"Specification({self.name!r}, {len(self.variables)} variables, "
            f"{len(self.actions)} actions)"
        )
