"""Counterexample trace formatting (TLC's error-trace output).

When an invariant fails, the checker returns the trace from an initial
state to the violating state.  :func:`format_trace` renders it the way
TLC does — one numbered state per step, annotated with the action that
produced it — and :func:`diff_states` shows only what changed, which is
what one actually reads in long traces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .state import ActionLabel, State

__all__ = ["diff_states", "format_trace", "format_violation"]

Step = Tuple[Optional[ActionLabel], State]


def diff_states(before: Optional[State], after: State) -> Dict[str, Any]:
    """The variables whose value changed between two states."""
    if before is None:
        return dict(after.items())
    return {
        name: value
        for name, value in after.items()
        if before.get(name) != value
    }


def format_trace(trace: Sequence[Step], full_states: bool = False) -> str:
    """Render a trace as TLC-style numbered steps.

    ``full_states=False`` (default) prints only changed variables per
    step; the initial state is always printed in full.
    """
    lines: List[str] = []
    previous: Optional[State] = None
    for index, (label, state) in enumerate(trace, start=1):
        header = "Initial state" if label is None else repr(label)
        lines.append(f"State {index}: {header}")
        shown = state.items() if (full_states or label is None) \
            else diff_states(previous, state).items()
        for name, value in sorted(shown):
            lines.append(f"  /\\ {name} = {value!r}")
        previous = state
    return "\n".join(lines)


def format_violation(violation) -> str:
    """Render an :class:`~repro.tlaplus.errors.InvariantViolation`."""
    return (
        f"Invariant {violation.invariant_name} is violated.\n"
        f"{format_trace(violation.trace)}"
    )
