"""Immutable values for the TLA+-style specification substrate.

TLC represents every state as an assignment of *values* to variables and
deduplicates states by fingerprint.  To make this work in Python, every
value stored in a state must be hashable and immutable.  This module
provides:

* :class:`FrozenDict` — an immutable, hashable mapping.  TLA+ functions
  (``[s \\in Server |-> 0]``) and records (``[mtype |-> ...]``) are both
  represented as ``FrozenDict``.
* :func:`freeze` / :func:`thaw` — recursive conversion between mutable
  Python containers and their immutable counterparts.
* Bag (multiset) helpers — the official Raft specification stores
  in-flight messages in a *bag* (message → count); ``bag_add`` /
  ``bag_remove`` / ``bag_count`` implement the same algebra over a
  ``FrozenDict``.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from typing import Any, Dict, Iterator, Tuple

__all__ = [
    "FrozenDict",
    "freeze",
    "thaw",
    "EMPTY_BAG",
    "bag_add",
    "bag_remove",
    "bag_count",
    "bag_contains",
    "bag_size",
    "bag_items",
    "bag_from_iterable",
    "is_bag",
]


class FrozenDict(Mapping):
    """An immutable, hashable mapping with functional update helpers.

    ``FrozenDict`` is the workhorse value type of the checker: per-node
    spec variables (``currentTerm``), TLA+ records (messages) and bags
    are all ``FrozenDict`` instances.  Equality and hashing are
    order-insensitive, and ``repr`` is sorted so state dumps are stable.
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        data: Dict[Any, Any] = dict(*args, **kwargs)
        object.__setattr__(self, "_data", data)
        object.__setattr__(self, "_hash", None)

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, key: Any) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    # -- Hashing / equality -------------------------------------------------
    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(frozenset(self._data.items()))
            object.__setattr__(self, "_hash", h)
        return h

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, FrozenDict):
            return self._data == other._data
        if isinstance(other, Mapping):
            return dict(self._data) == dict(other)
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        try:
            items = sorted(self._data.items(), key=lambda kv: repr(kv[0]))
        except TypeError:
            items = list(self._data.items())
        body = ", ".join(f"{k!r}: {v!r}" for k, v in items)
        return f"FrozenDict({{{body}}})"

    # -- Functional updates ---------------------------------------------------
    def set(self, key: Any, value: Any) -> "FrozenDict":
        """Return a copy with ``key`` bound to ``value`` (TLA+ ``EXCEPT``)."""
        data = dict(self._data)
        data[key] = freeze(value)
        return FrozenDict(data)

    def update(self, mapping: Mapping) -> "FrozenDict":
        """Return a copy with every key of ``mapping`` rebound."""
        data = dict(self._data)
        for key, value in mapping.items():
            data[key] = freeze(value)
        return FrozenDict(data)

    def remove(self, key: Any) -> "FrozenDict":
        """Return a copy without ``key``; missing keys are a no-op."""
        if key not in self._data:
            return self
        data = dict(self._data)
        del data[key]
        return FrozenDict(data)

    def apply(self, key: Any, fn: Any) -> "FrozenDict":
        """Return a copy with ``fn`` applied to the value at ``key``.

        Mirrors ``[f EXCEPT ![k] = fn(@)]``.
        """
        return self.set(key, fn(self._data[key]))


def freeze(value: Any) -> Any:
    """Recursively convert ``value`` into an immutable, hashable form.

    dicts become :class:`FrozenDict`, lists/tuples become tuples, sets
    become frozensets.  Already-hashable leaves pass through unchanged.
    """
    if isinstance(value, FrozenDict):
        return value
    if isinstance(value, dict):
        return FrozenDict({freeze(k): freeze(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(freeze(v) for v in value)
    if not isinstance(value, Hashable):
        raise TypeError(f"cannot freeze unhashable value of type {type(value)!r}")
    return value


def thaw(value: Any) -> Any:
    """Inverse of :func:`freeze`: produce plain mutable Python containers.

    frozensets become sets, tuples become lists and ``FrozenDict`` becomes
    ``dict``.  ``thaw(freeze(x))`` equals ``x`` for values built from
    dict/list/set/scalar.
    """
    if isinstance(value, FrozenDict):
        out = {}
        for key, val in value.items():
            thawed_key = thaw(key)
            if not isinstance(thawed_key, Hashable):
                thawed_key = key  # keep container keys frozen (e.g. bag elements)
            out[thawed_key] = thaw(val)
        return out
    if isinstance(value, tuple):
        return [thaw(v) for v in value]
    if isinstance(value, frozenset):
        out_set = set()
        for val in value:
            thawed = thaw(val)
            out_set.add(thawed if isinstance(thawed, Hashable) else val)
        return out_set
    return value


# ---------------------------------------------------------------------------
# Bags (multisets).
#
# A bag is a FrozenDict mapping element -> positive count.  The official
# Raft spec models the network as a bag of messages so that duplicated
# messages are representable; we use the same encoding.
# ---------------------------------------------------------------------------

EMPTY_BAG = FrozenDict()


def is_bag(value: Any) -> bool:
    """Return True if ``value`` is structurally a bag (all counts >= 1)."""
    if not isinstance(value, FrozenDict):
        return False
    return all(isinstance(count, int) and count >= 1 for count in value.values())


def bag_add(bag: FrozenDict, element: Any, count: int = 1) -> FrozenDict:
    """Return ``bag`` with ``count`` extra copies of ``element``."""
    if count < 1:
        raise ValueError(f"bag_add count must be >= 1, got {count}")
    element = freeze(element)
    return bag.set(element, bag.get(element, 0) + count)

def bag_remove(bag: FrozenDict, element: Any, count: int = 1) -> FrozenDict:
    """Return ``bag`` with ``count`` copies of ``element`` removed.

    Raises ``KeyError`` if the bag holds fewer than ``count`` copies —
    removing a message that is not in flight is always a spec bug.
    """
    if count < 1:
        raise ValueError(f"bag_remove count must be >= 1, got {count}")
    element = freeze(element)
    have = bag.get(element, 0)
    if have < count:
        raise KeyError(f"bag holds {have} copies of {element!r}, cannot remove {count}")
    if have == count:
        return bag.remove(element)
    return bag.set(element, have - count)


def bag_count(bag: FrozenDict, element: Any) -> int:
    """Number of copies of ``element`` in ``bag``."""
    return bag.get(freeze(element), 0)


def bag_contains(bag: FrozenDict, element: Any) -> bool:
    """True if at least one copy of ``element`` is in ``bag``."""
    return bag_count(bag, element) >= 1


def bag_size(bag: FrozenDict) -> int:
    """Total number of elements (counting multiplicity)."""
    return sum(bag.values())


def bag_items(bag: FrozenDict) -> Iterator[Any]:
    """Iterate elements with multiplicity (an element with count 2 yields twice)."""
    for element, count in bag.items():
        for _ in range(count):
            yield element


def bag_from_iterable(elements: Any) -> FrozenDict:
    """Build a bag from an iterable of elements."""
    bag = EMPTY_BAG
    for element in elements:
        bag = bag_add(bag, element)
    return bag
