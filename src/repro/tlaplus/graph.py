"""The state-space graph produced by model checking.

This is the artifact Mocket consumes: a directed multigraph whose nodes
are verified states (numbered in discovery order, 0 = an initial state,
exactly like TLC's dump) and whose edges are labelled with the action
binding that produced the transition.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .state import ActionLabel, State

__all__ = ["Edge", "StateGraph"]


class Edge:
    """One labelled transition ``src --label--> dst``."""

    __slots__ = ("src", "dst", "label", "index")

    def __init__(self, src: int, dst: int, label: ActionLabel, index: int):
        self.src = src
        self.dst = dst
        self.label = label
        self.index = index  # unique, stable edge id in insertion order

    def key(self) -> Tuple[int, int, ActionLabel]:
        return (self.src, self.dst, self.label)

    def __repr__(self) -> str:
        return f"Edge({self.src} --{self.label!r}--> {self.dst})"

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class StateGraph:
    """Directed multigraph of verified states.

    Nodes are dense integer ids; ``state_of`` maps back to the
    :class:`State`.  Parallel edges with distinct labels are kept (two
    different actions may connect the same pair of states), but the pair
    ``(src, dst, label)`` is unique.
    """

    def __init__(self, spec_name: str = ""):
        self.spec_name = spec_name
        self._states: List[State] = []
        self._ids: Dict[State, int] = {}
        self._out: Dict[int, List[Edge]] = {}
        self._in: Dict[int, List[Edge]] = {}
        self._edge_keys: Set[Tuple[int, int, ActionLabel]] = set()
        self._edges: List[Edge] = []
        self.initial_ids: List[int] = []

    # -- construction -----------------------------------------------------------
    def add_state(self, state: State, initial: bool = False) -> int:
        """Intern ``state``; returns its (possibly pre-existing) id."""
        node_id = self._ids.get(state)
        if node_id is None:
            node_id = len(self._states)
            self._states.append(state)
            self._ids[state] = node_id
            self._out[node_id] = []
            self._in[node_id] = []
        if initial and node_id not in self.initial_ids:
            self.initial_ids.append(node_id)
        return node_id

    def add_edge(self, src: int, dst: int, label: ActionLabel) -> Optional[Edge]:
        """Add ``src --label--> dst``; duplicate (src, dst, label) is a no-op."""
        key = (src, dst, label)
        if key in self._edge_keys:
            return None
        edge = Edge(src, dst, label, index=len(self._edges))
        self._edge_keys.add(key)
        self._edges.append(edge)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        return edge

    # -- queries ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def state_of(self, node_id: int) -> State:
        return self._states[node_id]

    def id_of(self, state: State) -> Optional[int]:
        return self._ids.get(state)

    def states(self) -> Iterator[Tuple[int, State]]:
        return enumerate(self._states)

    def edges(self) -> List[Edge]:
        return list(self._edges)

    def out_edges(self, node_id: int) -> List[Edge]:
        return list(self._out[node_id])

    def in_edges(self, node_id: int) -> List[Edge]:
        return list(self._in[node_id])

    def successors(self, node_id: int) -> List[int]:
        return [edge.dst for edge in self._out[node_id]]

    def edge_between(self, src: int, dst: int, label: ActionLabel) -> Optional[Edge]:
        for edge in self._out[src]:
            if edge.dst == dst and edge.label == label:
                return edge
        return None

    def enabled_labels(self, node_id: int) -> List[ActionLabel]:
        """Labels of every outgoing edge — the actions enabled in this state."""
        return [edge.label for edge in self._out[node_id]]

    def action_names(self) -> Set[str]:
        """Distinct action names appearing on edges."""
        return {edge.label.name for edge in self._edges}

    def terminal_ids(self) -> List[int]:
        """States with no outgoing edge (deadlocks / completed behaviours)."""
        return [node_id for node_id in range(self.num_states) if not self._out[node_id]]

    # -- conversions ----------------------------------------------------------------
    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` for ad-hoc analysis."""
        import networkx as nx

        graph = nx.MultiDiGraph(spec=self.spec_name)
        for node_id, state in self.states():
            graph.add_node(node_id, state=state, initial=node_id in self.initial_ids)
        for edge in self._edges:
            graph.add_edge(edge.src, edge.dst, label=edge.label, index=edge.index)
        return graph

    def stats(self) -> Dict[str, int]:
        return {
            "states": self.num_states,
            "edges": self.num_edges,
            "initial": len(self.initial_ids),
            "terminal": len(self.terminal_ids()),
            "actions": len(self.action_names()),
        }

    def __repr__(self) -> str:
        return (
            f"StateGraph({self.spec_name!r}, {self.num_states} states, "
            f"{self.num_edges} edges)"
        )
