"""Effect rules (MCK301-MCK306): defects visible in action footprints.

These rules consume the effect signatures extracted by
:mod:`repro.analysis.effects` (memoized on the :class:`LintContext`),
catching a family of spec defects the structural MCK0xx rules cannot
see: variables that flow nowhere, guards that can never pass under the
declared constants, update dicts writing state the spec never declared,
nondeterminism inside action bodies, and — with a mapping and an
implementation model — actions whose implementation writes state their
spec footprint never touches.

As with the spec rules, unanalyzable source silences a rule rather
than producing guesses: every MCK30x rule checks the relevant
``unknown_*`` flag before reporting.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Optional, Set

from .engine import LintContext, Rule, register
from .findings import Finding, Severity
from .rules_spec import _fn_source_ast

__all__ = []  # rules register themselves; nothing to re-export


def _any_unknown(effects) -> bool:
    return effects.invariants_unknown or any(
        a.unknown_reads or a.unknown_writes for a in effects.actions.values())


def _all_reads(effects) -> Set[str]:
    reads: Set[str] = set()
    for action in effects.actions.values():
        reads |= action.reads
    for inv_reads in effects.invariant_reads.values():
        reads |= inv_reads
    return reads


def _all_writes(effects) -> Set[str]:
    writes: Set[str] = set()
    for action in effects.actions.values():
        writes |= action.writes
    return writes


@register
class WriteOnlyVariableRule(Rule):
    code = "MCK301"
    name = "write-only-variable"
    severity = Severity.WARNING
    description = ("A variable is written by actions but read by no "
                   "action, domain or invariant: it can never influence "
                   "a transition or a check, yet still multiplies the "
                   "state space with every distinct value written.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        effects = ctx.effects()
        if _any_unknown(effects):
            return
        reads = _all_reads(effects)
        for name in ctx.spec.variables:
            writers = sorted(a.name for a in effects.actions.values()
                             if name in a.writes)
            if writers and name not in reads:
                yield self.finding(
                    f"variable {name!r} is written by "
                    f"{', '.join(writers)} but never read by any action "
                    f"or invariant",
                    obj=f"spec.{ctx.spec.name}/variable.{name}")


@register
class ReadOnlyVariableRule(Rule):
    code = "MCK302"
    name = "read-only-variable"
    severity = Severity.WARNING
    description = ("A variable is read by actions or invariants but "
                   "written only by Init: its value never changes, so it "
                   "is a constant wearing a variable's cost (state-vector "
                   "width, mapping burden) — declare it as a constant.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        effects = ctx.effects()
        if _any_unknown(effects):
            return
        writes = _all_writes(effects)
        reads = _all_reads(effects)
        for name in ctx.spec.variables:
            if name in reads and name not in writes:
                yield self.finding(
                    f"variable {name!r} is read but never written after "
                    f"Init; a constant would model it without widening "
                    f"the state vector",
                    obj=f"spec.{ctx.spec.name}/variable.{name}")


class _ConstEval(ast.NodeVisitor):
    """Safe evaluator for expressions over ``const`` only.

    Raises :class:`LookupError` on anything that is not a pure function
    of the declared constants — names, state access, unknown calls —
    so callers can only ever prove something about genuinely
    constant-only guards.
    """

    def __init__(self, constants, const_name: str):
        self.constants = constants
        self.const_name = const_name

    def eval(self, node: ast.AST) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == self.const_name:
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str) \
                    and sl.value in self.constants:
                return self.constants[sl.value]
            raise LookupError("unresolvable constant subscript")
        if isinstance(node, ast.Compare):
            left = self.eval(node.left)
            for op, comparator in zip(node.ops, node.comparators):
                right = self.eval(comparator)
                if not self._compare(op, left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.BoolOp):
            values = [self.eval(v) for v in node.values]
            if isinstance(node.op, ast.And):
                return all(values)
            return any(values)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return not self.eval(node.operand)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -self.eval(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop(node.op, self.eval(node.left),
                               self.eval(node.right))
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "len" and len(node.args) == 1:
            return len(self.eval(node.args[0]))
        raise LookupError(f"not constant-evaluable: {ast.dump(node)[:40]}")

    @staticmethod
    def _compare(op: ast.AST, left: Any, right: Any) -> bool:
        if isinstance(op, ast.Eq):
            return left == right
        if isinstance(op, ast.NotEq):
            return left != right
        if isinstance(op, ast.Lt):
            return left < right
        if isinstance(op, ast.LtE):
            return left <= right
        if isinstance(op, ast.Gt):
            return left > right
        if isinstance(op, ast.GtE):
            return left >= right
        if isinstance(op, ast.In):
            return left in right
        if isinstance(op, ast.NotIn):
            return left not in right
        raise LookupError("unsupported comparison")

    @staticmethod
    def _binop(op: ast.AST, left: Any, right: Any) -> Any:
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Mod):
            return left % right
        raise LookupError("unsupported operator")


def _returns_none(body) -> bool:
    return (len(body) == 1 and isinstance(body[0], ast.Return)
            and (body[0].value is None
                 or (isinstance(body[0].value, ast.Constant)
                     and body[0].value.value is None)))


@register
class UnsatisfiableGuardRule(Rule):
    code = "MCK303"
    name = "unsatisfiable-guard"
    severity = Severity.WARNING
    description = ("A leading constant-only guard of an action always "
                   "disables it under the declared constants "
                   "(``if const[...] <op> ...: return None`` evaluating "
                   "true): the action is dead in this model "
                   "configuration.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for name, decl in ctx.spec.actions.items():
            tree = _fn_source_ast(decl.fn)
            if tree is None:
                continue
            fn_node = next((n for n in ast.walk(tree)
                            if isinstance(n, (ast.FunctionDef,
                                              ast.AsyncFunctionDef))), None)
            if fn_node is None:
                continue
            args = fn_node.args
            params = [a.arg for a in args.posonlyargs + args.args]
            const_name = params[1] if len(params) > 1 else "const"
            evaluator = _ConstEval(ctx.spec.constants, const_name)
            # only *leading* guards: once any statement's effect on
            # control flow is not constant-evaluable, later const-only
            # guards may sit behind state-dependent early returns
            for stmt in fn_node.body:
                if not (isinstance(stmt, ast.If)
                        and _returns_none(stmt.body) and not stmt.orelse):
                    break
                try:
                    verdict = evaluator.eval(stmt.test)
                except LookupError:
                    break
                if verdict:
                    yield self.finding(
                        f"action {name!r} is trivially disabled: its "
                        f"leading guard is always true for the declared "
                        f"constants",
                        file=decl.file,
                        line=decl.line,
                        obj=f"spec.{ctx.spec.name}/action.{name}")
                    break


@register
class UndeclaredUpdateRule(Rule):
    code = "MCK304"
    name = "undeclared-update-variable"
    severity = Severity.ERROR
    description = ("An action's update dict writes a key that is not a "
                   "declared variable; the first time that return path "
                   "runs, Specification.apply raises ActionError.  This "
                   "is the static form of that runtime check.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        effects = ctx.effects()
        for name, action in effects.actions.items():
            for var in sorted(action.writes):
                if var not in ctx.spec.variables:
                    yield self.finding(
                        f"action {name!r} writes undeclared variable "
                        f"{var!r} in an update dict",
                        file=action.file,
                        line=action.write_lines.get(var) or action.line,
                        obj=f"spec.{ctx.spec.name}/action.{name}")


@register
class NondeterministicActionRule(Rule):
    code = "MCK305"
    name = "nondeterministic-action"
    severity = Severity.ERROR
    description = ("An action body contains a nondeterministic construct "
                   "— a call into random/time/os-style modules, iteration "
                   "over an unordered container, or in-place mutation of "
                   "an object reached through state.  Actions must be "
                   "pure functions of (state, const, params) or replays "
                   "and POR certificates are unsound.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        effects = ctx.effects()
        for name, action in effects.actions.items():
            for violation in action.violations:
                yield self.finding(
                    f"action {name!r}: {violation.kind}: "
                    f"{violation.detail}",
                    file=action.file,
                    line=violation.line or action.line,
                    obj=f"spec.{ctx.spec.name}/action.{name}")


@register
class EffectFootprintDriftRule(Rule):
    code = "MCK306"
    name = "effect-footprint-drift"
    severity = Severity.WARNING
    requires = ("spec", "mapping", "impl")
    description = ("An instrumentation hook writes a mapped shadow "
                   "variable that the bound spec action's statically "
                   "extracted write set never touches: the implementation "
                   "and the spec disagree about the action's footprint, "
                   "so the state checker will flag the extra write as a "
                   "divergence on the first schedule that runs it.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        effects = ctx.effects()
        for write in ctx.impl.hook_writes:
            action = effects.actions.get(write.action)
            if action is None or action.unknown_writes:
                continue  # unknown action/footprint: other rules' turf
            if write.spec_name not in ctx.spec.variables:
                continue  # not a spec variable: MCK2xx reports that
            if write.spec_name in action.writes:
                continue
            yield self.finding(
                f"{write.class_name}.{write.method} writes shadow "
                f"variable {write.spec_name!r} under hook for action "
                f"{write.action!r}, whose spec write set is "
                f"{{{', '.join(sorted(action.writes))}}}",
                file=write.file, line=write.line,
                obj=f"impl.{write.class_name}.{write.method}")
