"""Rendering for ``mocket analyze``: effect tables, JSON, DOT.

The JSON envelope is versioned (``"version": 1``) like the lint /
conform / scenarios envelopes; the DOT output is the action-dependency
graph (an edge per *conflicting* action pair, labelled with the
variables the pair conflicts on — the complement of the independence
relation POR consumes).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .effects import SpecEffects

__all__ = ["render_effects_text", "effects_to_dict", "render_effects_json",
           "render_effects_dot"]


def _flags(action) -> str:
    flags = []
    if action.unknown_reads:
        flags.append("reads?")
    if action.unknown_writes:
        flags.append("writes?")
    if action.violations:
        flags.append(f"{len(action.violations)} violation(s)")
    return ", ".join(flags) if flags else "ok"


def render_effects_text(effects: SpecEffects) -> str:
    """The human-readable per-action effect table."""
    lines: List[str] = []
    names = sorted(effects.actions)
    lines.append(f"{effects.spec_name}: {len(names)} action(s)")
    width = max((len(n) for n in names), default=0)
    for name in names:
        action = effects.actions[name]
        lines.append(f"  {name:<{width}}  "
                     f"reads={{{', '.join(sorted(action.reads))}}} "
                     f"writes={{{', '.join(sorted(action.writes))}}} "
                     f"consts={{{', '.join(sorted(action.const_reads))}}} "
                     f"[{_flags(action)}]")
        for violation in action.violations:
            where = f" (line {violation.line})" if violation.line else ""
            lines.append(f"  {'':<{width}}  ! {violation.kind}: "
                         f"{violation.detail}{where}")
    pairs = effects.independence().pairs()
    lines.append(f"statically independent pairs: {len(pairs)}")
    for a, b in pairs:
        lines.append(f"  {a} || {b}")
    return "\n".join(lines)


def effects_to_dict(effects: SpecEffects) -> Dict[str, Any]:
    pairs = effects.independence().pairs()
    dependencies = []
    names = sorted(effects.actions)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            conflict = effects.conflicts(a, b)
            if conflict and not effects.independent(a, b):
                dependencies.append(
                    {"a": a, "b": b, "vars": sorted(conflict)})
    return {
        "version": 1,
        "spec": effects.spec_name,
        "actions": [effects.actions[name].as_dict() for name in names],
        "independent_pairs": [list(pair) for pair in pairs],
        "dependencies": dependencies,
        "invariant_reads": {
            name: sorted(reads)
            for name, reads in sorted(effects.invariant_reads.items())
        },
    }


def render_effects_json(effects: SpecEffects) -> str:
    return json.dumps(effects_to_dict(effects), indent=2, sort_keys=True)


def render_effects_dot(effects: SpecEffects) -> str:
    """The action-dependency graph in Graphviz DOT.

    Nodes are actions; an (undirected) edge connects every pair that
    does *not* statically commute, labelled with the conflicting
    variables.  Uncertified actions (unknown effects or purity
    violations) are drawn dashed — they conflict with everything.
    """
    lines = [f'graph "{effects.spec_name}-dependencies" {{']
    names = sorted(effects.actions)
    for name in names:
        action = effects.actions[name]
        style = ' style=dashed' if not action.certifiable else ""
        lines.append(f'  "{name}"{style};')
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if effects.independent(a, b):
                continue
            conflict = effects.conflicts(a, b)
            label = ", ".join(sorted(conflict)[:4])
            if len(conflict) > 4:
                label += ", ..."
            lines.append(f'  "{a}" -- "{b}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
