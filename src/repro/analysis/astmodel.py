"""Static model of an instrumented system, extracted with :mod:`ast`.

The conformance rules need to know, without importing or running the
system under test, which instrumentation hooks its source declares:

* ``traced_field("specName")`` class attributes (shadow variables),
* ``record_var(node, "specName", value)`` calls (method variables),
* ``@mocket_action`` / ``@mocket_receive`` decorated methods and
  ``with action_span(self, "Name", ...)`` snippet spans,
* ``get_msg(node, "msgVar", ...)`` outgoing-message recordings,

plus the **shadow writes**: assignments to a traced-field attribute
from code no action hook covers.  Such a write mutates mapped state
behind the testbed's back — the static analogue of a race on mapped
state — and is the defect rule MCK203 reports.

Coverage is computed per line.  A line is covered when it sits in a
``@mocket_action``/``@mocket_receive`` method, inside a ``with
action_span(...)`` block, or in ``__init__`` (construction precedes
deployment, so the state checker never observes it).  A helper method
is covered transitively when *every* in-class reference to it (call or
``self.helper`` mention) sits on a covered line — the pattern of
``_step_down``-style helpers that only run inside instrumented
handlers.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["TracedField", "ActionHook", "ShadowWrite", "MessageUse",
           "RecordedVar", "HookWrite", "ImplModel", "clear_cache"]

_ACTION_DECORATORS = ("mocket_action", "mocket_receive")

#: path -> ((mtime_ns, size), extracted single-file model)
_FILE_CACHE: Dict[str, Tuple[Tuple[int, int], "ImplModel"]] = {}


def clear_cache() -> None:
    """Drop the per-file extraction cache (tests that rewrite fixtures)."""
    _FILE_CACHE.clear()


@dataclass(frozen=True)
class TracedField:
    """One ``attr = traced_field("spec_name")`` class attribute."""

    attr: str
    spec_name: str
    class_name: str
    file: str
    line: int


@dataclass(frozen=True)
class RecordedVar:
    """One ``record_var(node, "spec_name", value)`` call site."""

    spec_name: str
    file: str
    line: int


@dataclass(frozen=True)
class ActionHook:
    """One instrumentation hook mapping code to a spec action."""

    action: str
    kind: str                    # "mocket_action" | "mocket_receive" | "action_span"
    class_name: str
    method: str
    file: str
    line: int
    msg_var: Optional[str] = None


@dataclass(frozen=True)
class MessageUse:
    """One message-variable reference (``get_msg``/``mocket_receive``)."""

    msg_var: str
    class_name: str
    method: str
    file: str
    line: int


@dataclass(frozen=True)
class ShadowWrite:
    """An assignment to a traced-field attribute outside action coverage."""

    attr: str
    spec_name: str
    class_name: str
    method: str
    file: str
    line: int


@dataclass(frozen=True)
class HookWrite:
    """A traced-field write attributed to a specific action hook.

    Only *direct* coverage attributes a write to an action: the write
    sits in a ``@mocket_action``/``@mocket_receive`` method body or
    inside a ``with action_span(...)`` block for that action.
    Transitively-covered helper writes are not attributed — a helper
    may run under several different actions.
    """

    attr: str
    spec_name: str
    action: str
    class_name: str
    method: str
    file: str
    line: int


def _call_name(node: ast.AST) -> Optional[str]:
    """The bare callee name of a Call node (``foo(...)`` or ``m.foo(...)``)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _str_arg(call: ast.Call, index: int) -> Optional[str]:
    if len(call.args) > index:
        arg = call.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


class _ClassScan:
    """Per-class accumulator used while walking one ClassDef."""

    def __init__(self, name: str):
        self.name = name
        self.traced: Dict[str, str] = {}            # attr -> spec_name
        self.methods: Set[str] = set()
        self.decorated: Set[str] = set()            # methods with action decorators
        self.decorated_actions: Dict[str, List[str]] = {}  # method -> actions
        self.span_ranges: Dict[str, List[Tuple[int, int]]] = {}
        # method -> [(start, end, action)]: which action each span covers
        self.span_actions: Dict[str, List[Tuple[int, int, str]]] = {}
        self.writes: List[Tuple[str, str, int]] = []     # (attr, method, line)
        self.refs: Dict[str, List[Tuple[str, int]]] = {}  # method -> [(caller, line)]


class ImplModel:
    """Everything the conformance rules need to know about a system's source."""

    def __init__(self) -> None:
        self.traced_fields: List[TracedField] = []
        self.record_vars: List[RecordedVar] = []
        self.hooks: List[ActionHook] = []
        self.message_uses: List[MessageUse] = []
        self.shadow_writes: List[ShadowWrite] = []
        self.hook_writes: List[HookWrite] = []
        self.files: List[str] = []

    # -- queries -------------------------------------------------------------
    @property
    def shadow_names(self) -> Set[str]:
        """Every shadow-store key the source can populate."""
        names = {tf.spec_name for tf in self.traced_fields}
        names.update(rv.spec_name for rv in self.record_vars)
        return names

    @property
    def hook_actions(self) -> Set[str]:
        return {hook.action for hook in self.hooks}

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_package(cls, package_dir: str) -> "ImplModel":
        """Parse every ``*.py`` file directly inside ``package_dir``."""
        model = cls()
        for entry in sorted(os.listdir(package_dir)):
            if entry.endswith(".py"):
                model.add_file(os.path.join(package_dir, entry))
        return model

    def add_file(self, path: str) -> None:
        """Extract one source file, via the module-level per-file cache.

        Rules and ``mocket lint all`` build many models over the same
        package files; extraction is pure per file, so the parsed
        result is cached keyed on ``(mtime_ns, size)`` and merged into
        this model on a hit.
        """
        try:
            stat = os.stat(path)
            signature = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            signature = None
        if signature is not None:
            cached = _FILE_CACHE.get(path)
            if cached is not None and cached[0] == signature:
                self._merge(cached[1])
                return
        partial = ImplModel()
        partial._extract_file(path)
        if signature is not None:
            _FILE_CACHE[path] = (signature, partial)
        self._merge(partial)

    def _extract_file(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        tree = ast.parse(source, filename=path)
        self.files.append(path)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._scan_class(node, path)

    def _merge(self, other: "ImplModel") -> None:
        # record entries are frozen dataclasses, safe to share
        self.traced_fields.extend(other.traced_fields)
        self.record_vars.extend(other.record_vars)
        self.hooks.extend(other.hooks)
        self.message_uses.extend(other.message_uses)
        self.shadow_writes.extend(other.shadow_writes)
        self.hook_writes.extend(other.hook_writes)
        self.files.extend(other.files)

    # -- class analysis -----------------------------------------------------------
    def _scan_class(self, cls_node: ast.ClassDef, path: str) -> None:
        scan = _ClassScan(cls_node.name)
        for stmt in cls_node.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and _call_name(stmt.value) == "traced_field":
                spec_name = _str_arg(stmt.value, 0)
                if spec_name is not None:
                    attr = stmt.targets[0].id
                    scan.traced[attr] = spec_name
                    self.traced_fields.append(TracedField(
                        attr, spec_name, scan.name, path, stmt.lineno))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan.methods.add(stmt.name)
        for stmt in cls_node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_method(stmt, scan, path)
        self._emit_shadow_writes(scan, path)
        self._emit_hook_writes(scan, path)

    def _scan_method(self, fn: ast.AST, scan: _ClassScan, path: str) -> None:
        method = fn.name
        spans = scan.span_ranges.setdefault(method, [])
        for deco in fn.decorator_list:
            name = _call_name(deco)
            if name in _ACTION_DECORATORS:
                action = _str_arg(deco, 0)
                if action is not None:
                    scan.decorated.add(method)
                    scan.decorated_actions.setdefault(method, []).append(action)
                    self.hooks.append(ActionHook(
                        action, name, scan.name, method, path, deco.lineno,
                        msg_var=_str_arg(deco, 1)))
                    if name == "mocket_receive":
                        msg_var = _str_arg(deco, 1)
                        if msg_var is not None:
                            self.message_uses.append(MessageUse(
                                msg_var, scan.name, method, path, deco.lineno))
        for node in ast.walk(fn):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    call = item.context_expr
                    if _call_name(call) == "action_span":
                        action = _str_arg(call, 1)
                        if action is not None:
                            self.hooks.append(ActionHook(
                                action, "action_span", scan.name, method,
                                path, call.lineno))
                            span = (node.lineno,
                                    node.end_lineno or node.lineno)
                            spans.append(span)
                            scan.span_actions.setdefault(method, []).append(
                                (span[0], span[1], action))
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name == "record_var":
                    spec_name = _str_arg(node, 1)
                    if spec_name is not None:
                        self.record_vars.append(RecordedVar(
                            spec_name, path, node.lineno))
                elif name == "get_msg":
                    msg_var = _str_arg(node, 1)
                    if msg_var is not None:
                        self.message_uses.append(MessageUse(
                            msg_var, scan.name, method, path, node.lineno))
            elif isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                if isinstance(node.ctx, ast.Store):
                    if node.attr in scan.traced:
                        scan.writes.append((node.attr, method, node.lineno))
                elif node.attr in scan.methods:
                    scan.refs.setdefault(node.attr, []).append(
                        (method, node.lineno))

    # -- coverage ---------------------------------------------------------------
    def _emit_shadow_writes(self, scan: _ClassScan, path: str) -> None:
        if not scan.writes:
            return
        covered: Set[str] = set(scan.decorated) | {"__init__"}

        def line_covered(method: str, line: int) -> bool:
            if method in covered:
                return True
            return any(start <= line <= end
                       for start, end in scan.span_ranges.get(method, ()))

        # fixpoint: a helper whose every in-class reference is covered
        # only ever runs inside an instrumented action
        changed = True
        while changed:
            changed = False
            for method in scan.methods - covered:
                refs = scan.refs.get(method)
                if refs and all(line_covered(c, l) for c, l in refs):
                    covered.add(method)
                    changed = True

        for attr, method, line in scan.writes:
            if not line_covered(method, line):
                self.shadow_writes.append(ShadowWrite(
                    attr, scan.traced[attr], scan.name, method, path, line))

    def _emit_hook_writes(self, scan: _ClassScan, path: str) -> None:
        """Attribute traced-field writes to the hooks directly covering
        them (decorated method body, or an enclosing action_span)."""
        for attr, method, line in scan.writes:
            actions = list(scan.decorated_actions.get(method, ()))
            for start, end, action in scan.span_actions.get(method, ()):
                if start <= line <= end and action not in actions:
                    actions.append(action)
            for action in actions:
                self.hook_writes.append(HookWrite(
                    attr, scan.traced[attr], action, scan.name, method,
                    path, line))
