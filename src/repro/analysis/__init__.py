"""Static conformance analysis for spec/mapping/implementation triples.

``mocket lint <target>`` runs a pluggable set of rules (stable codes
``MCK001`` ...; catalogue in docs/ANALYSIS.md) over a specification,
its :class:`SpecMapping`, and an :mod:`ast`-level model of the
instrumented implementation — catching the paper's "developer errors"
(unmapped variables, missing hooks, state written behind the testbed's
back) before any cluster is ever deployed.

Public API::

    result = lint_target("pyxraft")       # bundled target by name
    result = run_lint(LintContext(...))   # any spec/mapping/impl triple
"""

from .astmodel import ImplModel
from .effects import (
    ActionEffects, IndependenceRelation, SpecEffects, analyze_action,
    analyze_spec,
)
from .engine import LintContext, LintResult, Rule, all_rules, register, run_lint
from .findings import Finding, Severity
from .report import (
    JSON_SCHEMA_VERSION, as_json_dict, as_sarif_dict, render_json,
    render_sarif, render_text,
)
from . import targets

__all__ = [
    "ActionEffects",
    "Finding",
    "ImplModel",
    "IndependenceRelation",
    "JSON_SCHEMA_VERSION",
    "LintContext",
    "LintResult",
    "Rule",
    "Severity",
    "SpecEffects",
    "all_rules",
    "analyze_action",
    "analyze_spec",
    "as_json_dict",
    "as_sarif_dict",
    "lint_target",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "targets",
]


def lint_target(name: str) -> LintResult:
    """Lint one bundled target (system or spec) by name."""
    # resolved through the module attribute so tests can substitute targets
    return run_lint(targets.resolve(name))
