"""Conformance rules: the mapping vs the spec (MCK101-MCK105) and the
instrumented implementation vs both (MCK201-MCK206).

MCK101-MCK104 are the runtime :meth:`SpecMapping.validate` checks,
re-reported through the linter: :meth:`SpecMapping.problems` is the
single source of truth, so the static and runtime gates can never
disagree.  The MCK2xx rules consume the :class:`ImplModel` extracted
from the system's source — they need the code, not a running cluster.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterable, List, Optional, Set, Tuple

from ..core.mapping.kinds import TriggerKind
from ..tlaplus.spec import ActionKind, VarKind
from .engine import LintContext, Rule, register
from .findings import Finding, Severity
from .rules_spec import _const_keys_read, _fn_location, _fn_source_ast

__all__ = []  # rules register themselves; nothing to re-export


class _MappingProblemRule(Rule):
    """Base for MCK101-MCK104: re-report one code from
    :meth:`SpecMapping.problems`."""

    requires = ("spec", "mapping")
    severity = Severity.ERROR

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for problem in ctx.mapping.problems():
            if problem.code == self.code:
                yield self.finding(problem.message,
                                   obj=f"mapping.{ctx.spec.name}")


@register
class UnmappedVariableRule(_MappingProblemRule):
    code = "MCK101"
    name = "unmapped-variable"
    description = ("A state variable is neither mapped nor explicitly "
                   "skipped; the state checker cannot compare it.")


@register
class ForbiddenMappingRule(_MappingProblemRule):
    code = "MCK102"
    name = "forbidden-mapping"
    description = ("A counter or auxiliary variable is mapped; those "
                   "exist only to bound/guide exploration and must not "
                   "be compared against the implementation.")


@register
class UnmappedActionRule(_MappingProblemRule):
    code = "MCK103"
    name = "unmapped-action"
    description = ("A spec action has no mapping, so the testbed cannot "
                   "drive or await it and every schedule containing it "
                   "is untestable.")


@register
class TriggerMismatchRule(_MappingProblemRule):
    code = "MCK104"
    name = "trigger-mismatch"
    description = ("A fault/user-request action is mapped with the wrong "
                   "trigger kind (e.g. a crash mapped as spontaneous).")


# (callable attribute, owner kind, expected positional arity)
_VARIABLE_CALLABLES: Tuple[Tuple[str, int], ...] = (
    ("to_spec", 1), ("compare", 2), ("derive", 2))
_ACTION_CALLABLES: Tuple[Tuple[str, int], ...] = (
    ("run", 3), ("duplicate", 2))


def _accepts_arity(fn: Callable, arity: int) -> Optional[bool]:
    """Whether ``fn`` can be called with ``arity`` positional args;
    None when the signature is not introspectable (C builtins)."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    try:
        sig.bind(*(object() for _ in range(arity)))
    except TypeError:
        return False
    return True


@register
class TranslatorArityRule(Rule):
    code = "MCK105"
    name = "translator-arity"
    severity = Severity.ERROR
    requires = ("spec", "mapping")
    description = ("A mapping callback has the wrong arity: "
                   "``to_spec(value)``, ``compare(spec, impl)``, "
                   "``derive(cluster, node_id)``, "
                   "``run(cluster, params, occurrence)``, "
                   "``duplicate(cluster, msg)``. A mismatch only "
                   "surfaces as a TypeError mid-test-campaign.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for name, vmap in ctx.mapping.variables.items():
            for attr, arity in _VARIABLE_CALLABLES:
                yield from self._check(ctx, getattr(vmap, attr), attr, arity,
                                       f"variable {name!r}")
        for name, amap in ctx.mapping.actions.items():
            for attr, arity in _ACTION_CALLABLES:
                yield from self._check(ctx, getattr(amap, attr), attr, arity,
                                       f"action {name!r}")

    def _check(self, ctx: LintContext, fn: Optional[Callable], attr: str,
               arity: int, owner: str) -> Iterable[Finding]:
        if fn is None or _accepts_arity(fn, arity) is not False:
            return
        code = getattr(fn, "__code__", None)
        yield self.finding(
            f"{owner} {attr} callback {getattr(fn, '__name__', '?')!r} does "
            f"not accept {arity} positional argument(s)",
            file=code.co_filename if code else None,
            line=code.co_firstlineno if code else None,
            obj=f"mapping.{ctx.spec.name}/{owner.split(' ')[0]}")


def _is_budget_value(value) -> bool:
    """A fault-budget constant: a plain int (False/True are not budgets)."""
    return isinstance(value, int) and not isinstance(value, bool)


@register
class DormantFaultVocabularyRule(Rule):
    code = "MCK106"
    name = "dormant-fault-vocabulary"
    severity = Severity.WARNING
    requires = ("spec", "mapping")
    description = ("The spec declares a fault vocabulary that can never "
                   "fire: a fault action's budget constant is 0, or "
                   "fault-budget constants are read but the mapping "
                   "registers no fault-triggered hook — ``--faults`` "
                   "silently degrades to fault-free testing.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        budget_keys: Set[str] = set()
        for name, decl in sorted(ctx.spec.actions.items()):
            if decl.kind is not ActionKind.FAULT:
                continue
            tree = _fn_source_ast(decl.fn)
            if tree is None:
                continue
            keys = {key for key in _const_keys_read(tree)
                    if _is_budget_value(ctx.spec.constants.get(key))}
            budget_keys |= keys
            dormant = sorted(key for key in keys
                             if ctx.spec.constants[key] == 0)
            if dormant:
                file, line = _fn_location(decl.fn)
                yield self.finding(
                    f"fault action {name!r} is dormant: budget constant(s) "
                    f"{', '.join(map(repr, dormant))} are 0, so it can "
                    f"never be scheduled",
                    file=file, line=line,
                    obj=f"spec.{ctx.spec.name}/action.{name}")
        if budget_keys and not any(
                amap.trigger is TriggerKind.FAULT
                for amap in ctx.mapping.actions.values()):
            yield self.finding(
                f"spec budgets fault constant(s) "
                f"{', '.join(map(repr, sorted(budget_keys)))} but the "
                f"mapping registers no fault-triggered hook; the fault "
                f"vocabulary cannot be driven",
                obj=f"mapping.{ctx.spec.name}")


@register
class UnboundConformActionRule(Rule):
    code = "MCK107"
    name = "unbound-conform-action"
    severity = Severity.WARNING
    requires = ("spec", "mapping")
    description = ("The mapping binds log events for trace conformance "
                   "(``mocket conform``) but leaves a spec action with no "
                   "event binding; occurrences of that action are "
                   "invisible to the monitor, so the walk treats it as "
                   "silently-takable and divergence detection weakens.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.mapping.events:
            return  # mapping not used for conformance; nothing to check
        bound = ctx.mapping.bound_actions()
        for name in sorted(ctx.spec.actions):
            if name not in bound:
                yield self.finding(
                    f"spec action {name!r} has no event binding; the "
                    f"conformance monitor cannot observe it "
                    f"(bind_event/bind_default_events)",
                    obj=f"mapping.{ctx.spec.name}/action.{name}")


def _mapped_impl_names(ctx: LintContext) -> Set[str]:
    """Shadow-store keys the state checker will read for this mapping."""
    return {vmap.impl_name for vmap in ctx.mapping.variables.values()
            if not vmap.skipped and vmap.derive is None}


@register
class MissingShadowFieldRule(Rule):
    code = "MCK201"
    name = "missing-shadow-field"
    severity = Severity.ERROR
    requires = ("spec", "mapping", "impl")
    description = ("A variable mapping names an ``impl_name`` no "
                   "``traced_field``/``record_var`` in the source ever "
                   "populates; the state checker would always read an "
                   "absent shadow entry.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        available = ctx.impl.shadow_names
        for name, vmap in sorted(ctx.mapping.variables.items()):
            if vmap.skipped or vmap.derive is not None:
                continue
            if vmap.impl_name not in available:
                yield self.finding(
                    f"variable {name!r} maps to shadow field "
                    f"{vmap.impl_name!r}, which no traced_field/record_var "
                    f"declares",
                    obj=f"mapping.{ctx.spec.name}/variable.{name}")


@register
class MissingActionHookRule(Rule):
    code = "MCK202"
    name = "missing-action-hook"
    severity = Severity.ERROR
    requires = ("spec", "mapping", "impl")
    description = ("A spontaneous or user-request action has no "
                   "``@mocket_action``/``@mocket_receive``/``action_span`` "
                   "hook in the source, so the testbed would wait forever "
                   "for its notification.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        hooked = ctx.impl.hook_actions
        for name, amap in sorted(ctx.mapping.actions.items()):
            if amap.trigger is TriggerKind.FAULT:
                continue  # injected by the testbed, not observed in-code
            if name not in hooked:
                yield self.finding(
                    f"action {name!r} ({amap.trigger.value}) has no "
                    f"instrumentation hook in the implementation",
                    obj=f"mapping.{ctx.spec.name}/action.{name}")


@register
class ShadowWriteRule(Rule):
    code = "MCK203"
    name = "shadow-write"
    severity = Severity.ERROR
    requires = ("impl",)
    description = ("A traced-field attribute is assigned from code no "
                   "action hook covers; mapped state changes behind the "
                   "testbed's back and state checking sees a stale or "
                   "impossible value.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for write in ctx.impl.shadow_writes:
            yield self.finding(
                f"{write.class_name}.{write.method} writes traced field "
                f"{write.attr!r} (spec variable {write.spec_name!r}) outside "
                f"any action hook",
                file=write.file, line=write.line,
                obj=f"impl.{write.class_name}.{write.method}")


@register
class UnknownHookActionRule(Rule):
    code = "MCK204"
    name = "unknown-hook-action"
    severity = Severity.WARNING
    requires = ("spec", "impl")
    description = ("An instrumentation hook names an action the spec does "
                   "not declare — often a leftover from a spec rename, or "
                   "a hook only meaningful for a spec variant.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for hook in ctx.impl.hooks:
            if hook.action not in ctx.spec.actions:
                yield self.finding(
                    f"{hook.kind} hook in {hook.class_name}.{hook.method} "
                    f"names unknown action {hook.action!r}",
                    file=hook.file, line=hook.line,
                    obj=f"impl.{hook.class_name}.{hook.method}")


@register
class DanglingTracedFieldRule(Rule):
    code = "MCK205"
    name = "dangling-traced-field"
    severity = Severity.WARNING
    requires = ("spec", "mapping", "impl")
    description = ("A ``traced_field``/``record_var`` populates a shadow "
                   "entry no variable mapping ever reads; the tracing "
                   "work is dead weight on every state write.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        wanted = _mapped_impl_names(ctx)
        for tf in ctx.impl.traced_fields:
            if tf.spec_name not in wanted:
                yield self.finding(
                    f"traced field {tf.class_name}.{tf.attr} populates "
                    f"shadow entry {tf.spec_name!r}, which no variable "
                    f"mapping reads",
                    file=tf.file, line=tf.line,
                    obj=f"impl.{tf.class_name}.{tf.attr}")
        seen: Set[Tuple[str, int]] = set()
        for rv in ctx.impl.record_vars:
            if rv.spec_name not in wanted and (rv.file, rv.line) not in seen:
                seen.add((rv.file, rv.line))
                yield self.finding(
                    f"record_var populates shadow entry {rv.spec_name!r}, "
                    f"which no variable mapping reads",
                    file=rv.file, line=rv.line,
                    obj=f"impl.record_var.{rv.spec_name}")


@register
class BadMessageUseRule(Rule):
    code = "MCK206"
    name = "bad-message-use"
    severity = Severity.ERROR
    requires = ("spec", "impl")
    description = ("``get_msg``/``mocket_receive`` names a message "
                   "variable the spec does not declare as message-kind; "
                   "the recorded message lands in a set the checker never "
                   "compares.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for use in ctx.impl.message_uses:
            decl = ctx.spec.variables.get(use.msg_var)
            if decl is None:
                problem = "undeclared variable"
            elif decl.kind is not VarKind.MESSAGE:
                problem = f"{decl.kind.value} variable (message required)"
            else:
                continue
            yield self.finding(
                f"{use.class_name}.{use.method} records messages under "
                f"{use.msg_var!r}: {problem}",
                file=use.file, line=use.line,
                obj=f"impl.{use.class_name}.{use.method}")
