"""Resolving lint target names to :class:`LintContext` objects.

A *system* target (``toycache``/``pyxraft``/``raftkv``/``minizk``)
yields the full triple — spec, mapping and the :class:`ImplModel`
parsed from the system's package — using the same default builders the
``mocket test`` command uses, so the linter checks exactly what the
testbed would run.  A *spec* target (``example``/``xraft``/``zab``)
yields the specification alone; only the spec rules apply.
"""

from __future__ import annotations

import os
from typing import List

from .astmodel import ImplModel
from .engine import LintContext

__all__ = ["SYSTEM_TARGETS", "SPEC_TARGETS", "resolve", "all_targets"]

SYSTEM_TARGETS = ("toycache", "pyxraft", "raftkv", "minizk")
SPEC_TARGETS = ("example", "xraft", "zab")


def _impl_model(package) -> ImplModel:
    return ImplModel.from_package(os.path.dirname(package.__file__))


def _resolve_system(name: str) -> LintContext:
    if name == "toycache":
        from ..specs import build_example_spec
        from ..systems import toycache
        from ..systems.toycache import build_toycache_mapping

        spec = build_example_spec()
        return LintContext(name, spec, build_toycache_mapping(),
                           _impl_model(toycache))
    if name == "pyxraft":
        from ..systems import pyxraft
        from ..systems.pyxraft import XraftConfig, build_xraft_mapping
        from ..systems.pyxraft.mapping import default_xraft_spec

        spec = default_xraft_spec()
        return LintContext(name, spec,
                           build_xraft_mapping(spec, XraftConfig()),
                           _impl_model(pyxraft))
    if name == "raftkv":
        from ..systems import raftkv
        from ..systems.raftkv import RaftKvConfig, build_raftkv_mapping
        from ..systems.raftkv.mapping import default_raftkv_spec

        spec = default_raftkv_spec()
        return LintContext(name, spec,
                           build_raftkv_mapping(spec, RaftKvConfig()),
                           _impl_model(raftkv))
    if name == "minizk":
        from ..systems import minizk
        from ..systems.minizk import MiniZkConfig, build_minizk_mapping
        from ..systems.minizk.mapping import default_zab_spec

        spec = default_zab_spec()
        return LintContext(name, spec,
                           build_minizk_mapping(spec, MiniZkConfig()),
                           _impl_model(minizk))
    raise AssertionError(name)


def _resolve_spec(name: str) -> LintContext:
    if name == "example":
        from ..specs import build_example_spec

        return LintContext(name, build_example_spec())
    if name == "xraft":
        from ..systems.pyxraft.mapping import default_xraft_spec

        return LintContext(name, default_xraft_spec())
    if name == "zab":
        from ..systems.minizk.mapping import default_zab_spec

        return LintContext(name, default_zab_spec())
    raise AssertionError(name)


def resolve(name: str) -> LintContext:
    """Build the lint context for one target name."""
    if name in SYSTEM_TARGETS:
        return _resolve_system(name)
    if name in SPEC_TARGETS:
        return _resolve_spec(name)
    known = "|".join(SYSTEM_TARGETS + SPEC_TARGETS)
    raise ValueError(f"unknown lint target {name!r} (known: {known})")


def all_targets() -> List[str]:
    """Every bundled target name, systems first."""
    return list(SYSTEM_TARGETS) + list(SPEC_TARGETS)
