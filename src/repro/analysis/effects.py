"""Static effect analysis of specification actions (``mocket analyze``).

Spec actions are pure Python functions ``fn(state, const, **params) ->
update-dict``; their *effect signatures* are therefore statically
extractable from source with :mod:`ast`:

* the **read set** — spec variables touched via ``state.x`` /
  ``state["x"]`` (including reads one call deep inside helpers that
  receive the bare ``state``, like the Raft spec's ``fold_update_term``),
* the **write set** — the keys of every returned update dict, including
  guard-dependent partial writes (an action that returns different
  dicts on different branches *may* write the union of their keys),
* the **const read set** — constants read as ``const["X"]`` or
  quantified over via ``from_constant``,
* **purity violations** — nondeterministic constructs the runtime
  determinism guards would catch one state too late: calls into
  ``random``/``time``/``os``-style modules, iteration over unordered
  containers (set literals / ``set()`` / ``frozenset()``), and mutation
  of objects reached through ``state``.

From the effect signatures a conservative **static independence
relation** follows: two actions with disjoint write/write and
write/read footprints commute (the update dict of each depends only on
variables the other never writes), so every diamond the graph-level POR
would discover for such a pair is guaranteed to close — the analysis
certifies commutativity *before* any state is enumerated, the static
analogue of Apalache's assignment analysis.  ``find_diamonds`` uses the
relation to skip per-diamond graph verification (see
``repro.core.testgen.por``).

Extraction is deliberately conservative: anything the analyzer cannot
resolve (a ``state`` escaping into an unresolvable call, a non-literal
return value, ``**`` unpacking in an update dict) sets an *unknown*
flag, and unknown effects certify nothing.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple,
)

from ..tlaplus.spec import ActionDecl, Specification

__all__ = [
    "PurityViolation",
    "ActionEffects",
    "SpecEffects",
    "IndependenceRelation",
    "analyze_spec",
    "analyze_action",
]

# modules whose calls make an action nondeterministic across runs
_IMPURE_ROOTS = frozenset({
    "random", "time", "os", "uuid", "secrets", "datetime", "socket",
})
# bare names that are nondeterministic even without a module prefix
# (``from random import random`` / ``from time import time``)
_IMPURE_NAMES = frozenset({"random", "time", "urandom", "uuid4", "getrandbits"})
# method calls that mutate their receiver in place
_MUTATORS = frozenset({
    "append", "add", "update", "pop", "popitem", "remove", "discard",
    "clear", "extend", "insert", "setdefault", "sort", "reverse",
})
_MAX_HELPER_DEPTH = 5


@dataclass(frozen=True)
class PurityViolation:
    """One nondeterministic construct found inside an action body."""

    kind: str        # "impure-call" | "unordered-iteration" | "state-mutation"
    detail: str
    line: Optional[int] = None


@dataclass
class ActionEffects:
    """The statically extracted effect signature of one spec action."""

    name: str
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    const_reads: FrozenSet[str] = frozenset()
    violations: Tuple[PurityViolation, ...] = ()
    unknown_reads: bool = False
    unknown_writes: bool = False
    write_lines: Dict[str, Optional[int]] = field(default_factory=dict)
    file: Optional[str] = None
    line: Optional[int] = None

    @property
    def certifiable(self) -> bool:
        """Whether this signature may participate in static independence:
        fully known effects and no nondeterminism."""
        return not (self.unknown_reads or self.unknown_writes
                    or self.violations)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "const_reads": sorted(self.const_reads),
            "violations": [
                {"kind": v.kind, "detail": v.detail, "line": v.line}
                for v in self.violations
            ],
            "unknown_reads": self.unknown_reads,
            "unknown_writes": self.unknown_writes,
            "certifiable": self.certifiable,
        }


class IndependenceRelation:
    """A symmetric relation over action *names* certifying commutativity.

    ``certified(a, b)`` answers in O(1); the relation is safe to hand to
    :func:`repro.core.testgen.por.find_diamonds`, which will skip the
    per-diamond join verification for certified pairs.
    """

    __slots__ = ("_pairs",)

    def __init__(self, pairs: FrozenSet[FrozenSet[str]]):
        self._pairs = pairs

    def certified(self, name_a: str, name_b: str) -> bool:
        return frozenset((name_a, name_b)) in self._pairs

    def pairs(self) -> List[Tuple[str, str]]:
        """Every certified pair as sorted name tuples, sorted."""
        return sorted(tuple(sorted(p)) for p in self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __repr__(self) -> str:
        return f"IndependenceRelation({len(self._pairs)} pairs)"


@dataclass
class SpecEffects:
    """Effect signatures for every action (and invariant) of one spec."""

    spec_name: str
    actions: Dict[str, ActionEffects] = field(default_factory=dict)
    invariant_reads: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    invariants_unknown: bool = False

    def independent(self, name_a: str, name_b: str) -> bool:
        """Conservative static commutativity of two distinct actions."""
        if name_a == name_b:
            return False
        ea = self.actions.get(name_a)
        eb = self.actions.get(name_b)
        if ea is None or eb is None:
            return False
        if not (ea.certifiable and eb.certifiable):
            return False
        return not (ea.writes & eb.writes
                    or ea.writes & eb.reads
                    or eb.writes & ea.reads)

    def independence(self) -> IndependenceRelation:
        names = sorted(self.actions)
        pairs: Set[FrozenSet[str]] = set()
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.independent(a, b):
                    pairs.add(frozenset((a, b)))
        return IndependenceRelation(frozenset(pairs))

    def conflicts(self, name_a: str, name_b: str) -> FrozenSet[str]:
        """The variables two actions conflict on (empty if independent
        or unknown)."""
        ea = self.actions.get(name_a)
        eb = self.actions.get(name_b)
        if ea is None or eb is None:
            return frozenset()
        return ((ea.writes & eb.writes) | (ea.writes & eb.reads)
                | (eb.writes & ea.reads))


# -- source retrieval -----------------------------------------------------------

def _fn_node(fn: Callable) -> Optional[Tuple[ast.AST, int]]:
    """The FunctionDef/Lambda node of ``fn`` plus its absolute start line.

    Returns None when the source cannot be retrieved (interactive
    definitions, builtins); callers must then treat effects as unknown.
    """
    cached = getattr(fn, "_mocket_effects_node", None)
    if cached is not None:
        return cached
    try:
        lines, start = inspect.getsourcelines(fn)
        tree = ast.parse(textwrap.dedent("".join(lines)))
    except (OSError, TypeError, SyntaxError, IndentationError, ValueError):
        return None
    node: Optional[ast.AST] = None
    for candidate in ast.walk(tree):
        if isinstance(candidate, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
            node = candidate
            break
    if node is None:
        return None
    result = (node, start)
    try:
        fn._mocket_effects_node = result
    except AttributeError:
        pass
    return result


def _resolver_env(fn: Callable) -> Dict[str, Any]:
    """Names resolvable from ``fn``: globals overlaid with closure cells."""
    env: Dict[str, Any] = dict(getattr(fn, "__globals__", {}) or {})
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is not None and closure:
        for name, cell in zip(code.co_freevars, closure):
            try:
                env[name] = cell.cell_contents
            except ValueError:
                pass  # empty cell
    return env


def _param_names(node: ast.AST) -> List[str]:
    args = node.args
    return [a.arg for a in args.posonlyargs + args.args]


# -- the extractor -----------------------------------------------------------

class _Extractor:
    """Accumulates one action's effect signature across helper calls."""

    def __init__(self, resolver: Mapping[str, Any], line_offset: int):
        self.resolver = resolver
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.const_reads: Set[str] = set()
        self.violations: List[PurityViolation] = []
        self.unknown_reads = False
        self.unknown_writes = False
        self.write_lines: Dict[str, Optional[int]] = {}
        self._line_offset = line_offset
        self._seen: Set[int] = set()

    def _line(self, node: ast.AST) -> Optional[int]:
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return None
        return self._line_offset + lineno - 1

    # -- entry points ---------------------------------------------------------

    def analyze(self, fn: Callable, collect_writes: bool) -> None:
        resolved = _fn_node(fn)
        if resolved is None:
            self.unknown_reads = True
            if collect_writes:
                self.unknown_writes = True
            return
        node, start = resolved
        self._line_offset = start
        params = _param_names(node)
        state_name = params[0] if params else None
        const_name = params[1] if len(params) > 1 else None
        self._seen.add(id(fn))
        self._analyze_node(node, state_name, const_name, depth=0,
                           collect_writes=collect_writes)

    # -- body analysis -----------------------------------------------------------

    def _analyze_node(self, fnode: ast.AST, state_name: Optional[str],
                      const_name: Optional[str], depth: int,
                      collect_writes: bool) -> None:
        """Analyze one function node with the given state/const aliases."""
        body = fnode.body if isinstance(fnode.body, list) else [fnode.body]
        local_defs = {
            stmt.name: stmt for stmt in body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._scan_reads(fnode, state_name, const_name, local_defs, depth)
        if collect_writes:
            self._scan_writes(fnode, local_defs)

    # -- reads, purity and escapes --------------------------------------------

    def _scan_reads(self, fnode: ast.AST, state_name: Optional[str],
                    const_name: Optional[str],
                    local_defs: Mapping[str, ast.AST], depth: int) -> None:
        consumed: Set[int] = set()   # state Name nodes accounted for
        for node in ast.walk(fnode):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == state_name:
                consumed.add(id(node.value))
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    self.violations.append(PurityViolation(
                        "state-mutation",
                        f"assignment to state.{node.attr}", self._line(node)))
                else:
                    self.reads.add(node.attr)
            elif isinstance(node, ast.Subscript) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == state_name:
                consumed.add(id(node.value))
                sl = node.slice
                if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                    if isinstance(node.ctx, (ast.Store, ast.Del)):
                        self.violations.append(PurityViolation(
                            "state-mutation",
                            f"assignment to state[{sl.value!r}]",
                            self._line(node)))
                    else:
                        self.reads.add(sl.value)
                else:
                    self.unknown_reads = True
            elif isinstance(node, ast.Subscript) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == const_name:
                sl = node.slice
                if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                    self.const_reads.add(sl.value)
            elif isinstance(node, ast.Call):
                self._scan_call(node, state_name, const_name, local_defs,
                                consumed, depth)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_iteration(node.iter)
            elif isinstance(node, ast.comprehension):
                self._check_iteration(node.iter)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if self._rooted_at(target, state_name):
                        self.violations.append(PurityViolation(
                            "state-mutation",
                            "assignment into an object reached through "
                            "state", self._line(node)))
        # const.get("X")
        for node in ast.walk(fnode):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == const_name \
                    and node.func.attr == "get" \
                    and node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                self.const_reads.add(node.args[0].value)
        # any remaining bare use of the state name escapes the analysis
        for node in ast.walk(fnode):
            if isinstance(node, ast.Name) and node.id == state_name \
                    and id(node) not in consumed:
                self.unknown_reads = True

    def _scan_call(self, node: ast.Call, state_name: Optional[str],
                   const_name: Optional[str],
                   local_defs: Mapping[str, ast.AST],
                   consumed: Set[int], depth: int) -> None:
        func = node.func
        # nondeterministic module calls
        root = self._attr_root(func)
        if isinstance(func, ast.Attribute) and root in _IMPURE_ROOTS:
            self.violations.append(PurityViolation(
                "impure-call", f"call into the {root!r} module",
                self._line(node)))
        elif isinstance(func, ast.Name) and func.id in _IMPURE_NAMES:
            self.violations.append(PurityViolation(
                "impure-call", f"call to nondeterministic {func.id!r}()",
                self._line(node)))
        # in-place mutation of an object reached through state
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS \
                and self._rooted_at(func.value, state_name):
            self.violations.append(PurityViolation(
                "state-mutation",
                f".{func.attr}() on an object reached through state",
                self._line(node)))
        # bare state/const passed into a call: resolve and recurse
        state_positions = [idx for idx, arg in enumerate(node.args)
                           if isinstance(arg, ast.Name)
                           and arg.id == state_name]
        if not state_positions:
            return
        for idx in state_positions:
            consumed.add(id(node.args[idx]))
        if depth >= _MAX_HELPER_DEPTH:
            self.unknown_reads = True
            return
        callee = self._resolve_callee(func, local_defs)
        if callee is None:
            self.unknown_reads = True
            return
        const_positions = [idx for idx, arg in enumerate(node.args)
                           if isinstance(arg, ast.Name)
                           and arg.id == const_name]
        self._recurse_into(callee, state_positions, const_positions, depth)

    def _recurse_into(self, callee: Any, state_positions: List[int],
                      const_positions: List[int], depth: int) -> None:
        """Analyze a helper that received the bare state as an argument."""
        if isinstance(callee, ast.AST):
            # a function defined locally inside the action body: its
            # parameters alias the forwarded state/const
            params = _param_names(callee)
            state_alias = (params[state_positions[0]]
                           if state_positions and state_positions[0] < len(params)
                           else None)
            const_alias = (params[const_positions[0]]
                           if const_positions and const_positions[0] < len(params)
                           else None)
            if state_positions and state_alias is None:
                self.unknown_reads = True
                return
            self._analyze_node(callee, state_alias, const_alias, depth + 1,
                               collect_writes=False)
            return
        if not inspect.isfunction(callee) or id(callee) in self._seen:
            if not inspect.isfunction(callee):
                self.unknown_reads = True
            return
        self._seen.add(id(callee))
        resolved = _fn_node(callee)
        if resolved is None:
            self.unknown_reads = True
            return
        node, start = resolved
        params = _param_names(node)
        state_alias = (params[state_positions[0]]
                       if state_positions and state_positions[0] < len(params)
                       else None)
        const_alias = (params[const_positions[0]]
                       if const_positions and const_positions[0] < len(params)
                       else None)
        if state_positions and state_alias is None:
            self.unknown_reads = True
            return
        saved = self._line_offset
        self._line_offset = start
        self._analyze_node(node, state_alias, const_alias, depth + 1,
                           collect_writes=False)
        self._line_offset = saved

    def _resolve_callee(self, func: ast.AST,
                        local_defs: Mapping[str, ast.AST]) -> Optional[Any]:
        if isinstance(func, ast.Name):
            if func.id in local_defs:
                return local_defs[func.id]
            return self.resolver.get(func.id)
        return None

    # -- writes -----------------------------------------------------------

    def _scan_writes(self, fnode: ast.AST,
                     local_defs: Mapping[str, ast.AST]) -> None:
        dict_locals = self._track_dict_locals(fnode)
        for stmt in self._walk_own(fnode):
            if isinstance(stmt, ast.Return):
                self._record_return(stmt.value, dict_locals, local_defs,
                                    depth=0)

    def _record_return(self, value: Optional[ast.AST],
                       dict_locals: Mapping[str, Optional[Set[str]]],
                       local_defs: Mapping[str, ast.AST],
                       depth: int) -> None:
        if value is None:
            return
        if isinstance(value, ast.Constant) and value.value is None:
            return
        if isinstance(value, ast.Dict):
            self._record_dict(value)
            return
        if isinstance(value, ast.Name):
            keys = dict_locals.get(value.id, "missing")
            if keys == "missing" or keys is None:
                self.unknown_writes = True
            else:
                for key in keys:
                    self.writes.add(key)
                    self.write_lines.setdefault(key, self._line(value))
            return
        if isinstance(value, ast.IfExp):
            self._record_return(value.body, dict_locals, local_defs, depth)
            self._record_return(value.orelse, dict_locals, local_defs, depth)
            return
        if isinstance(value, ast.Call) and depth < _MAX_HELPER_DEPTH:
            callee = self._resolve_callee(value.func, local_defs)
            node: Optional[ast.AST] = None
            offset = self._line_offset
            if isinstance(callee, ast.AST):
                node = callee
            elif inspect.isfunction(callee):
                resolved = _fn_node(callee)
                if resolved is not None:
                    node, offset = resolved
            if node is not None:
                saved = self._line_offset
                self._line_offset = offset
                inner_locals = self._track_dict_locals(node)
                inner_defs = {
                    stmt.name: stmt for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                } if isinstance(node.body, list) else {}
                for stmt in self._walk_own(node):
                    if isinstance(stmt, ast.Return):
                        self._record_return(stmt.value, inner_locals,
                                            inner_defs, depth + 1)
                self._line_offset = saved
                return
        self.unknown_writes = True

    def _record_dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is None:        # ``**unpacking``
                self.unknown_writes = True
            elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.writes.add(key.value)
                self.write_lines.setdefault(key.value, self._line(key))
            else:
                self.unknown_writes = True

    def _track_dict_locals(self, fnode: ast.AST) -> Dict[str, Optional[Set[str]]]:
        """Locals assigned a dict literal, tracked through const-string
        subscript stores (``updates["votesGranted"] = ...``); a local
        whose keys cannot be fully determined maps to None."""
        tracked: Dict[str, Optional[Set[str]]] = {}
        for node in self._walk_own(fnode):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if isinstance(node.value, ast.Dict):
                    keys: Optional[Set[str]] = set()
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) \
                                and isinstance(key.value, str):
                            keys.add(key.value)
                        else:
                            keys = None
                            break
                    tracked[name] = keys
                elif name in tracked:
                    tracked[name] = None   # re-bound to something else
            elif isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Subscript) \
                    and isinstance(node.targets[0].value, ast.Name):
                name = node.targets[0].value.id
                if name in tracked and tracked[name] is not None:
                    sl = node.targets[0].slice
                    if isinstance(sl, ast.Constant) \
                            and isinstance(sl.value, str):
                        tracked[name].add(sl.value)
                    else:
                        tracked[name] = None
        return tracked

    # -- small utilities -------------------------------------------------------

    @staticmethod
    def _walk_own(fnode: ast.AST):
        """Walk a function body in source order (pre-order DFS) without
        descending into nested defs.  Source order matters: tracking an
        update-dict local requires seeing ``updates = {...}`` before
        ``updates["x"] = ...``."""
        body = fnode.body if isinstance(fnode.body, list) else [fnode.body]
        stack = list(reversed(body))
        while stack:
            node = stack.pop()
            yield node
            children = [child for child in ast.iter_child_nodes(node)
                        if not isinstance(child, (ast.FunctionDef,
                                                  ast.AsyncFunctionDef,
                                                  ast.Lambda))]
            stack.extend(reversed(children))

    @staticmethod
    def _attr_root(node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    @staticmethod
    def _rooted_at(node: ast.AST, state_name: Optional[str]) -> bool:
        if state_name is None:
            return False
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == state_name

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if isinstance(iter_node, ast.Set):
            self.violations.append(PurityViolation(
                "unordered-iteration", "iteration over a set literal",
                self._line(iter_node)))
        elif isinstance(iter_node, ast.Call) \
                and isinstance(iter_node.func, ast.Name) \
                and iter_node.func.id in ("set", "frozenset"):
            self.violations.append(PurityViolation(
                "unordered-iteration",
                f"iteration over {iter_node.func.id}(...)",
                self._line(iter_node)))


# -- per-declaration analysis -----------------------------------------------------

def _domain_effects(decl: ActionDecl, extractor: _Extractor) -> None:
    """Fold the parameter domains' reads into the action's read set.

    A binding drawn from ``in_flight(var)`` depends on the bag ``var``
    (another action writing the bag changes which bindings exist), so
    the bag is part of the action's read footprint.  ``from_constant``
    reads only the constant.  Any other callable domain is analyzed
    like a helper; an unanalyzable one makes the reads unknown.
    """
    for domain in decl.params.values():
        if not callable(domain):
            continue
        qualname = getattr(domain, "__qualname__", "")
        if qualname.startswith("from_constant.<locals>"):
            closure = getattr(domain, "__closure__", None)
            if closure:
                try:
                    value = closure[0].cell_contents
                except ValueError:
                    value = None
                if isinstance(value, str):
                    extractor.const_reads.add(value)
                    continue
            extractor.unknown_reads = True
        elif qualname.startswith("in_flight.<locals>"):
            closure = getattr(domain, "__closure__", None)
            if closure:
                try:
                    value = closure[0].cell_contents
                except ValueError:
                    value = None
                if isinstance(value, str):
                    extractor.reads.add(value)
                    continue
            extractor.unknown_reads = True
        else:
            resolved = _fn_node(domain)
            if resolved is None:
                extractor.unknown_reads = True
                continue
            node, start = resolved
            params = _param_names(node)
            saved = extractor._line_offset
            extractor._line_offset = start
            extractor._analyze_node(
                node,
                params[0] if params else None,
                params[1] if len(params) > 1 else None,
                depth=1, collect_writes=False)
            extractor._line_offset = saved


def analyze_action(decl: ActionDecl) -> ActionEffects:
    """Extract the effect signature of one action declaration."""
    extractor = _Extractor(_resolver_env(decl.fn), line_offset=1)
    extractor.analyze(decl.fn, collect_writes=True)
    _domain_effects(decl, extractor)
    # a MESSAGE_RECEIVE binding's content came out of the bag: consuming
    # actions read the bag even if the body never names it explicitly
    if decl.message_var is not None:
        extractor.reads.add(decl.message_var)
    return ActionEffects(
        name=decl.name,
        reads=frozenset(extractor.reads),
        writes=frozenset(extractor.writes),
        const_reads=frozenset(extractor.const_reads),
        violations=tuple(extractor.violations),
        unknown_reads=extractor.unknown_reads,
        unknown_writes=extractor.unknown_writes,
        write_lines=dict(extractor.write_lines),
        file=decl.file,
        line=decl.line,
    )


def analyze_spec(spec: Specification) -> SpecEffects:
    """Extract effect signatures for every action and invariant of a spec."""
    effects = SpecEffects(spec_name=spec.name)
    for name, decl in spec.actions.items():
        effects.actions[name] = analyze_action(decl)
    for name, fn in spec.invariants.items():
        extractor = _Extractor(_resolver_env(fn), line_offset=1)
        extractor.analyze(fn, collect_writes=False)
        effects.invariant_reads[name] = frozenset(extractor.reads)
        if extractor.unknown_reads:
            effects.invariants_unknown = True
    return effects
