"""Spec rules (MCK001-MCK007): defects inside a single specification.

These rules inspect a constructed :class:`Specification` — its declared
variables, constants, actions and invariants — combining runtime
introspection (the real function objects are available) with ``ast``
analysis of each function's source.  When a function's source cannot be
retrieved (e.g. it was defined interactively) the rules stay silent for
it rather than guess: a spec rule never reports a defect it cannot
anchor in evidence.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable, Iterable, List, Optional, Set, Tuple

from ..tlaplus.spec import ActionKind, Specification, VarKind
from ..tlaplus.state import State
from .engine import LintContext, Rule, register
from .findings import Finding, Severity

__all__ = []  # rules register themselves; nothing to re-export

# Attributes invariants may legitimately access on a State besides the
# spec's variables (the State API itself).
_STATE_API = {name for name in vars(State) if not name.startswith("_")}


def _fn_source_ast(fn: Callable) -> Optional[ast.AST]:
    cached = getattr(fn, "_mocket_lint_ast", None)
    if cached is not None:
        return cached
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    try:
        fn._mocket_lint_ast = tree
    except AttributeError:
        pass  # builtins / slotted callables: just re-parse next time
    return tree


def _fn_location(fn: Callable) -> Tuple[Optional[str], Optional[int]]:
    code = getattr(fn, "__code__", None)
    if code is None:
        return None, None
    return code.co_filename, code.co_firstlineno


def _spec_functions(spec: Specification) -> List[Tuple[str, Callable]]:
    fns: List[Tuple[str, Callable]] = []
    if spec._init_fn is not None:
        fns.append(("init", spec._init_fn))
    fns.extend((f"action.{name}", decl.fn) for name, decl in spec.actions.items())
    fns.extend((f"invariant.{name}", fn) for name, fn in spec.invariants.items())
    return fns


def _state_names_used(tree: ast.AST) -> Set[str]:
    """Variable names a function touches: ``state.x``, ``state["x"]``,
    or any string constant (covers update-dict keys like ``{"x": ...}``)."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
                and node.value.id == "state":
            used.add(node.attr)
        elif isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name) \
                and node.value.id == "state":
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                used.add(sl.value)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)
    return used


def _const_keys_read(tree: ast.AST) -> Set[str]:
    """Constant names read as ``const["X"]`` / ``const.get("X")``."""
    keys: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name) \
                and node.value.id == "const":
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                keys.add(sl.value)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "const" and node.func.attr == "get":
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                keys.add(node.args[0].value)
    return keys


def _reachable_values(fn: Callable, seen: Optional[Set[int]] = None) -> List[Any]:
    """Closure-cell and referenced-global values reachable from ``fn``,
    recursing through referenced functions (helpers like the Raft spec's
    ``fold_update_term`` hide constant uses one call deep)."""
    if seen is None:
        seen = set()
    if id(fn) in seen or getattr(fn, "__code__", None) is None:
        return []
    seen.add(id(fn))
    raw: List[Any] = []
    closure = getattr(fn, "__closure__", None) or ()
    for cell in closure:
        try:
            raw.append(cell.cell_contents)
        except ValueError:
            pass  # empty cell
    fn_globals = getattr(fn, "__globals__", {})
    for name in fn.__code__.co_names:
        if name in fn_globals:
            raw.append(fn_globals[name])
    values: List[Any] = []
    for value in raw:
        if inspect.isfunction(value):
            values.extend(_reachable_values(value, seen))
        else:
            values.append(value)
    return values


def _safe_eq(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return False


def _helper_domain_target(domain: Any, helper: str) -> Optional[str]:
    """The closed-over name when ``domain`` came from the given DSL
    helper (``from_constant`` / ``in_flight``)."""
    qualname = getattr(domain, "__qualname__", "")
    if not qualname.startswith(f"{helper}.<locals>"):
        return None
    closure = getattr(domain, "__closure__", None)
    if not closure:
        return None
    try:
        value = closure[0].cell_contents
    except ValueError:
        return None
    return value if isinstance(value, str) else None


@register
class UnreferencedVariableRule(Rule):
    code = "MCK001"
    name = "unreferenced-variable"
    severity = Severity.WARNING
    description = ("A declared variable is never referenced by any action: "
                   "only Init ever assigns it, so it is dead state that "
                   "still inflates the state space and the mapping burden.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        used: Set[str] = set()
        unresolved = False
        for name, decl in ctx.spec.actions.items():
            tree = _fn_source_ast(decl.fn)
            if tree is None:
                unresolved = True
                continue
            used |= _state_names_used(tree)
        if unresolved:
            return  # cannot see every action: stay silent, not wrong
        for name, decl in ctx.spec.variables.items():
            if name not in used:
                yield self.finding(
                    f"variable {name!r} ({decl.kind.value}) is never "
                    f"referenced by any action",
                    obj=f"spec.{ctx.spec.name}/variable.{name}")


@register
class UnknownConstantDomainRule(Rule):
    code = "MCK002"
    name = "unknown-constant-domain"
    severity = Severity.ERROR
    description = ("An action parameter quantifies over "
                   "``from_constant(name)`` for a constant the spec never "
                   "declares; every binding evaluation will raise KeyError.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for name, decl in ctx.spec.actions.items():
            file, line = _fn_location(decl.fn)
            for pname, domain in decl.params.items():
                const = _helper_domain_target(domain, "from_constant")
                if const is not None and const not in ctx.spec.constants:
                    yield self.finding(
                        f"action {name!r} parameter {pname!r} quantifies over "
                        f"undeclared constant {const!r}",
                        file=file, line=line,
                        obj=f"spec.{ctx.spec.name}/action.{name}")


@register
class BadMessageDomainRule(Rule):
    code = "MCK003"
    name = "bad-message-domain"
    severity = Severity.ERROR
    description = ("An action parameter quantifies over "
                   "``in_flight(var)`` where ``var`` is undeclared or not "
                   "a message-kind variable, so the domain is not a bag.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for name, decl in ctx.spec.actions.items():
            file, line = _fn_location(decl.fn)
            for pname, domain in decl.params.items():
                var = _helper_domain_target(domain, "in_flight")
                if var is None:
                    continue
                var_decl = ctx.spec.variables.get(var)
                if var_decl is None:
                    problem = f"undeclared variable {var!r}"
                elif var_decl.kind is not VarKind.MESSAGE:
                    problem = (f"variable {var!r} of kind "
                               f"{var_decl.kind.value!r} (message required)")
                else:
                    continue
                yield self.finding(
                    f"action {name!r} parameter {pname!r} uses "
                    f"in_flight over {problem}",
                    file=file, line=line,
                    obj=f"spec.{ctx.spec.name}/action.{name}")


@register
class InvariantUnknownVariableRule(Rule):
    code = "MCK004"
    name = "invariant-unknown-variable"
    severity = Severity.ERROR
    description = ("An invariant reads a state variable the spec never "
                   "declares; it will raise on the first checked state.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for name, fn in ctx.spec.invariants.items():
            tree = _fn_source_ast(fn)
            if tree is None:
                continue
            file, line = _fn_location(fn)
            reported: Set[str] = set()
            for node in ast.walk(tree):
                var: Optional[str] = None
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == "state":
                    var = node.attr
                elif isinstance(node, ast.Subscript) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == "state" \
                        and isinstance(node.slice, ast.Constant) \
                        and isinstance(node.slice.value, str):
                    var = node.slice.value
                if var is None or var in reported:
                    continue
                if var in ctx.spec.variables or var in _STATE_API:
                    continue
                reported.add(var)
                yield self.finding(
                    f"invariant {name!r} reads unknown variable {var!r}",
                    file=file, line=line,
                    obj=f"spec.{ctx.spec.name}/invariant.{name}")


@register
class UnusedConstantRule(Rule):
    code = "MCK005"
    name = "unused-constant"
    severity = Severity.WARNING
    description = ("A constant is declared but never read — not via "
                   "``const[...]``, not through a ``from_constant`` domain, "
                   "and no action/init/invariant references a value equal "
                   "to it. Dead model configuration misleads readers.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        spec = ctx.spec
        read_keys: Set[str] = set()
        reachable: List[Any] = []
        for _, fn in _spec_functions(spec):
            tree = _fn_source_ast(fn)
            if tree is not None:
                read_keys |= _const_keys_read(tree)
            reachable.extend(_reachable_values(fn))
        for decl in spec.actions.values():
            for domain in decl.params.values():
                const = _helper_domain_target(domain, "from_constant")
                if const is not None:
                    read_keys.add(const)
        for name, value in spec.constants.items():
            if name in read_keys:
                continue
            if any(_safe_eq(value, candidate) for candidate in reachable):
                continue
            yield self.finding(
                f"constant {name!r} is declared but never read",
                obj=f"spec.{spec.name}/constant.{name}")


@register
class ReceiveKindIncompleteRule(Rule):
    code = "MCK006"
    name = "receive-kind-incomplete"
    severity = Severity.ERROR
    description = ("A MESSAGE_RECEIVE action declares no ``msg_param`` or "
                   "no ``message_var``: the testbed cannot match the "
                   "consumed message against the schedule.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for name, decl in ctx.spec.actions.items():
            if decl.kind is not ActionKind.MESSAGE_RECEIVE:
                continue
            missing = [attr for attr in ("msg_param", "message_var")
                       if getattr(decl, attr) is None]
            if missing:
                file, line = _fn_location(decl.fn)
                yield self.finding(
                    f"message-receive action {name!r} declares no "
                    f"{' / '.join(missing)}",
                    file=file, line=line,
                    obj=f"spec.{ctx.spec.name}/action.{name}")


@register
class MessageVarKindRule(Rule):
    code = "MCK007"
    name = "message-var-kind"
    severity = Severity.ERROR
    description = ("An action's ``message_var`` names a variable whose kind "
                   "is not MESSAGE; the testbed's message sets only track "
                   "message-kind bags.")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for name, decl in ctx.spec.actions.items():
            if decl.message_var is None:
                continue
            var_decl = ctx.spec.variables.get(decl.message_var)
            if var_decl is not None and var_decl.kind is not VarKind.MESSAGE:
                file, line = _fn_location(decl.fn)
                yield self.finding(
                    f"action {name!r} routes messages through "
                    f"{decl.message_var!r}, which is {var_decl.kind.value}, "
                    f"not message",
                    file=file, line=line,
                    obj=f"spec.{ctx.spec.name}/action.{name}")
