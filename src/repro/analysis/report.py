"""Text and JSON reporters for lint results.

The JSON document is a stable interface (``"version": 1``): tools may
parse it, so keys are only ever *added*, never renamed or removed.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from .engine import LintResult

__all__ = ["JSON_SCHEMA_VERSION", "render_text", "render_json", "as_json_dict"]

JSON_SCHEMA_VERSION = 1


def _relpath(path: str) -> str:
    try:
        rel = os.path.relpath(path)
    except ValueError:       # different drive (Windows)
        return path
    return path if rel.startswith("..") else rel


def render_text(result: LintResult) -> str:
    """The human-readable report: one line per finding plus a summary."""
    lines = []
    for finding in result.findings:
        location = finding.location()
        if finding.file is not None:
            location = _relpath(finding.file)
            if finding.line is not None:
                location += f":{finding.line}"
        note = " (suppressed)" if finding.suppressed else ""
        lines.append(f"{location}: {finding.severity}: "
                     f"{finding.code}: {finding.message}{note}")
    counts = result.counts()
    lines.append(
        f"{result.target}: {counts['errors']} error(s), "
        f"{counts['warnings']} warning(s), "
        f"{counts['suppressed']} suppressed "
        f"({result.rules_run} rules)")
    return "\n".join(lines)


def as_json_dict(result: LintResult) -> Dict[str, Any]:
    """The JSON-reporter document as a plain dict."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "target": result.target,
        "rules_run": result.rules_run,
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": result.counts(),
    }


def render_json(result: LintResult) -> str:
    return json.dumps(as_json_dict(result), indent=2, sort_keys=True)
