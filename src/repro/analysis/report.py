"""Text and JSON reporters for lint results.

The JSON document is a stable interface (``"version": 1``): tools may
parse it, so keys are only ever *added*, never renamed or removed.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List

from .engine import LintResult, all_rules

__all__ = ["JSON_SCHEMA_VERSION", "render_text", "render_json",
           "as_json_dict", "render_sarif", "as_sarif_dict"]

JSON_SCHEMA_VERSION = 1


def _relpath(path: str) -> str:
    try:
        rel = os.path.relpath(path)
    except ValueError:       # different drive (Windows)
        return path
    return path if rel.startswith("..") else rel


def render_text(result: LintResult) -> str:
    """The human-readable report: one line per finding plus a summary."""
    lines = []
    for finding in result.findings:
        location = finding.location()
        if finding.file is not None:
            location = _relpath(finding.file)
            if finding.line is not None:
                location += f":{finding.line}"
        note = " (suppressed)" if finding.suppressed else ""
        lines.append(f"{location}: {finding.severity}: "
                     f"{finding.code}: {finding.message}{note}")
    counts = result.counts()
    # the summary names both the rules actually run (target-dependent:
    # spec-only targets skip mapping/impl rules) and the full catalogue
    # size, so rule-count drift is visible in CI logs
    lines.append(
        f"{result.target}: {counts['errors']} error(s), "
        f"{counts['warnings']} warning(s), "
        f"{counts['suppressed']} suppressed "
        f"({result.rules_run} of {len(all_rules())} rules)")
    return "\n".join(lines)


def as_json_dict(result: LintResult) -> Dict[str, Any]:
    """The JSON-reporter document as a plain dict."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "target": result.target,
        "rules_run": result.rules_run,
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": result.counts(),
    }


def render_json(result: LintResult) -> str:
    return json.dumps(as_json_dict(result), indent=2, sort_keys=True)


_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def as_sarif_dict(results: Iterable[LintResult]) -> Dict[str, Any]:
    """One SARIF 2.1.0 document aggregating any number of lint results.

    GitHub code scanning consumes exactly this shape: a single run with
    the full rule catalogue as ``reportingDescriptor`` objects and one
    result per finding.  In-source suppressions (``# mocket:
    ignore[...]``) are carried as SARIF suppression objects so scanning
    shows them as dismissed instead of dropping them.
    """
    rules = all_rules()
    rule_index = {rule.code: i for i, rule in enumerate(rules)}
    sarif_results: List[Dict[str, Any]] = []
    for result in results:
        for finding in result.findings:
            entry: Dict[str, Any] = {
                "ruleId": finding.code,
                "ruleIndex": rule_index.get(finding.code, -1),
                "level": _SARIF_LEVELS.get(str(finding.severity), "warning"),
                "message": {"text": f"[{result.target}] {finding.message}"},
            }
            location: Dict[str, Any] = {}
            if finding.file is not None:
                physical: Dict[str, Any] = {
                    "artifactLocation": {"uri": _relpath(finding.file)},
                }
                if finding.line is not None:
                    physical["region"] = {"startLine": finding.line}
                location["physicalLocation"] = physical
            if finding.obj is not None:
                location["logicalLocations"] = [{"name": finding.obj}]
            if location:
                entry["locations"] = [location]
            if finding.suppressed:
                entry["suppressions"] = [{"kind": "inSource"}]
            sarif_results.append(entry)
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "mocket-lint",
                    "informationUri":
                        "https://example.invalid/mocket/docs/ANALYSIS.md",
                    "rules": [{
                        "id": rule.code,
                        "name": rule.name,
                        "shortDescription": {"text": rule.description
                                             or rule.name},
                        "defaultConfiguration": {
                            "level": _SARIF_LEVELS.get(str(rule.severity),
                                                       "warning"),
                        },
                    } for rule in rules],
                },
            },
            "results": sarif_results,
        }],
    }


def render_sarif(results: Iterable[LintResult]) -> str:
    return json.dumps(as_sarif_dict(results), indent=2, sort_keys=True)
