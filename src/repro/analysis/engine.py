"""The pluggable rule engine behind ``mocket lint``.

A :class:`Rule` inspects a :class:`LintContext` — the constructed
:class:`Specification`, optionally its :class:`SpecMapping` and the
:class:`ImplModel` extracted from the instrumented system's source —
and yields :class:`Finding`s.  Rules register themselves with the
module-level registry via the :func:`register` decorator; stable codes
(``MCK001`` ...) never change meaning once released (docs/ANALYSIS.md
is the catalogue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Type

from ..core.mapping import SpecMapping
from ..tlaplus.spec import Specification
from .astmodel import ImplModel
from .findings import Finding, Severity, apply_suppressions

__all__ = ["LintContext", "Rule", "LintResult", "register", "all_rules",
           "rules_for", "run_lint"]


@dataclass
class LintContext:
    """Everything a rule may inspect for one lint target."""

    target: str
    spec: Specification
    mapping: Optional[SpecMapping] = None
    impl: Optional[ImplModel] = None
    _effects: Optional[object] = field(default=None, repr=False, compare=False)

    def effects(self):
        """The spec's effect signatures, analyzed once per context.

        Every MCK30x rule consumes this; memoizing keeps ``lint`` from
        re-walking the spec source once per rule.
        """
        if self._effects is None:
            from .effects import analyze_spec

            self._effects = analyze_spec(self.spec)
        return self._effects


class Rule:
    """One lint rule.  Subclasses set the class attributes and implement
    :meth:`run`; ``requires`` names the context pieces the rule needs
    (``"spec"``, ``"mapping"``, ``"impl"``) — the engine skips rules
    whose requirements the target cannot satisfy (e.g. conformance rules
    on a spec-only target)."""

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    requires: Tuple[str, ...] = ("spec",)
    description: str = ""

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def applicable(self, ctx: LintContext) -> bool:
        return all(getattr(ctx, need, None) is not None for need in self.requires)

    def finding(self, message: str, file: Optional[str] = None,
                line: Optional[int] = None, obj: Optional[str] = None) -> Finding:
        return Finding(code=self.code, severity=self.severity,
                       message=message, file=file, line=line, obj=obj)


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the engine's registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    _load_builtin_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rules_for(ctx: LintContext) -> List[Rule]:
    """The registered rules whose requirements ``ctx`` satisfies."""
    return [rule for rule in all_rules() if rule.applicable(ctx)]


def _load_builtin_rules() -> None:
    # rule modules self-register on import; imported lazily to avoid an
    # import cycle (rules import this module for @register)
    from . import rules_conformance, rules_effects, rules_spec  # noqa: F401


@dataclass
class LintResult:
    """All findings for one lint target, suppressions applied."""

    target: str
    findings: List[Finding] = field(default_factory=list)
    rules_run: int = 0

    def unsuppressed(self, min_severity: Severity = Severity.INFO) -> List[Finding]:
        return [f for f in self.findings
                if not f.suppressed and f.severity >= min_severity]

    @property
    def errors(self) -> List[Finding]:
        return self.unsuppressed(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.unsuppressed(Severity.WARNING)
                if f.severity is Severity.WARNING]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    def counts(self) -> Dict[str, int]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "suppressed": len(self.suppressed),
            "total": len(self.findings),
        }


def run_lint(ctx: LintContext, rules: Optional[Iterable[Rule]] = None) -> LintResult:
    """Run every applicable rule over ``ctx`` and collect the findings."""
    selected = list(rules) if rules is not None else rules_for(ctx)
    findings: List[Finding] = []
    rules_run = 0
    for rule in selected:
        if not rule.applicable(ctx):
            continue
        rules_run += 1
        findings.extend(rule.run(ctx))
    findings = apply_suppressions(findings)
    findings.sort(key=Finding.sort_key)
    return LintResult(target=ctx.target, findings=findings, rules_run=rules_run)
