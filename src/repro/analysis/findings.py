"""Findings, severities and suppression comments for the static linter.

A :class:`Finding` is one defect reported by one rule.  Findings carry a
stable rule code (``MCK001`` ...), a severity, a human message, and —
when the defect is anchored to source — a file and line, so that a
``# mocket: ignore[MCKxxx]`` comment on that line suppresses it.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["Severity", "Finding", "apply_suppressions"]


class Severity(enum.IntEnum):
    """Finding severities, ordered so comparisons work (ERROR > WARNING)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}") from None

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass
class Finding:
    """One defect reported by one lint rule."""

    code: str
    severity: Severity
    message: str
    file: Optional[str] = None
    line: Optional[int] = None
    obj: Optional[str] = None       # dotted path, e.g. "spec.raft/action.Timeout"
    suppressed: bool = False
    _sort_extra: int = field(default=0, repr=False, compare=False)

    def location(self) -> str:
        if self.file is None:
            return "<mapping>"
        if self.line is None:
            return self.file
        return f"{self.file}:{self.line}"

    def sort_key(self):
        return (self.file or "", self.line or 0, self.code, self.message)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "object": self.obj,
            "suppressed": self.suppressed,
        }


# ``# mocket: ignore`` suppresses every code on the line;
# ``# mocket: ignore[MCK203]`` / ``ignore[MCK203, MCK105]`` select codes.
_SUPPRESS_RE = re.compile(
    r"#\s*mocket:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?")


def _suppressed_codes(source_line: str) -> Optional[frozenset]:
    """The set of codes suppressed on this line (empty set = all codes),
    or None when the line carries no suppression comment."""
    match = _SUPPRESS_RE.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(c.strip() for c in codes.split(",") if c.strip())


def apply_suppressions(findings: Iterable[Finding]) -> List[Finding]:
    """Mark findings silenced by a ``# mocket: ignore[...]`` comment on
    their source line.  Findings without a file/line anchor can only be
    fixed, never suppressed."""
    findings = list(findings)
    cache: Dict[str, List[str]] = {}
    for finding in findings:
        if finding.file is None or finding.line is None:
            continue
        lines = cache.get(finding.file)
        if lines is None:
            try:
                with open(finding.file, "r", encoding="utf-8") as fh:
                    lines = fh.read().splitlines()
            except OSError:
                lines = []
            cache[finding.file] = lines
        if not 1 <= finding.line <= len(lines):
            continue
        codes = _suppressed_codes(lines[finding.line - 1])
        if codes is not None and (not codes or finding.code in codes):
            finding.suppressed = True
    return findings
